package service

import (
	"context"
	"fmt"
	"time"

	"m2mjoin/internal/hashtable"
	"m2mjoin/internal/plan"
	"m2mjoin/internal/storage"
)

// This file is the serving tier's write path. Mutate applies one batch
// of appends and deletes to a registered dataset through the storage
// delta API (storage.Dataset.Begin ... Commit), producing the next
// snapshot in the dataset's version chain, and then maintains every
// derived structure in lockstep:
//
//   - the entry head swaps to the new snapshot; queries admitted before
//     the swap keep their pinned snapshot (copy-on-write columns and
//     liveness make the old version immutable), queries admitted after
//     see the new one — snapshot isolation with no reader locks;
//   - unselected (maskFP == 0) cached artifacts of the previous version
//     are repaired in place onto the new version's cache keys: tables
//     via hashtable.ApplyDelta (O(delta), bit-identical to a cold
//     build), filters via Clone + AddKeys (OR-monotone), untouched
//     relations by re-inserting the same pointers under the new key.
//     Compacted relations are skipped — the next query rebuilds them
//     cold, which is the only correct shape after a geometry change;
//   - memoized shard partitions advance through shard.Advance, routing
//     the driver delta through the same row assignment, so per-shard
//     version fingerprints stay in lockstep with the parent chain;
//   - versions older than the retention window (the current and
//     previous snapshot) have their artifact cache keys purged, so a
//     write-heavy workload cannot grow the cache without bound on
//     superseded versions.
//
// Writers are serialized per dataset (verMu): the storage delta chain
// is single-writer per snapshot by contract. Mutations of datasets
// served by remote shard backends are the operator's responsibility to
// propagate — each process owns its own catalog, and a frontend only
// verifies backend content by the registered fingerprint; this
// prototype's sharded mutation story is the in-process one.

// MutationSpec is one operation of a mutation batch, addressed by
// relation name (the HTTP-friendly form of storage.Mutation).
type MutationSpec struct {
	// Op is "append" or "delete".
	Op string `json:"op"`
	// Relation names the target relation.
	Relation string `json:"relation"`
	// Values are the appended row's column values, in the relation's
	// column order (append only).
	Values []int64 `json:"values,omitempty"`
	// Row is the global row index to tombstone (delete only).
	Row int `json:"row,omitempty"`
}

// MutateRequest is one mutation batch; all operations commit
// atomically as one version.
type MutateRequest struct {
	Dataset string         `json:"dataset"`
	Ops     []MutationSpec `json:"ops"`
}

// MutateResult describes one committed version.
type MutateResult struct {
	Dataset string `json:"dataset"`
	// Version and Fingerprint identify the committed snapshot in the
	// dataset's lineage.
	Version     uint64 `json:"version"`
	Fingerprint uint64 `json:"fingerprint"`
	// Applied is the number of operations in the committed batch.
	Applied int `json:"applied"`
	// Compacted names relations whose maintenance state was compacted
	// at this commit (their artifacts rebuild cold on next use).
	Compacted []string `json:"compacted,omitempty"`
	// Repaired counts cached artifacts carried onto this version in
	// place (tables repaired via ApplyDelta, filters via Clone+AddKeys,
	// untouched relations re-keyed).
	Repaired int `json:"repaired"`
	// Rows reports each relation's physical row count after the commit
	// (rows are never renumbered — deletes tombstone, compaction only
	// advances the packed-region marker), so writers can address
	// later deletes at their own appended rows.
	Rows map[string]int `json:"rows"`
}

// Mutate commits one batch of appends and deletes against a registered
// dataset, advancing it to the next snapshot version. Queries in
// flight keep the snapshot they pinned at admission; queries admitted
// after Mutate returns see the new version. Safe for concurrent use —
// writers to one dataset are serialized internally.
func (s *Service) Mutate(ctx context.Context, req MutateRequest) (MutateResult, error) {
	if s.draining.Load() {
		return MutateResult{}, shedErr(fmt.Errorf("service is draining"), jitter(time.Second))
	}
	e := s.entry(req.Dataset)
	if e == nil {
		return MutateResult{}, invalidErr(fmt.Errorf("unknown dataset %q", req.Dataset))
	}
	if len(req.Ops) == 0 {
		return MutateResult{}, invalidErr(fmt.Errorf("mutation batch is empty"))
	}
	if err := ctx.Err(); err != nil {
		return MutateResult{}, classifyExecError(err)
	}

	mstart := s.now()
	e.verMu.Lock()
	defer e.verMu.Unlock()
	cur := e.head.Load()
	delta := cur.Begin()
	for _, op := range req.Ops {
		if _, ok := e.nodeOf[op.Relation]; !ok {
			return MutateResult{}, invalidErr(fmt.Errorf("dataset %q has no relation %q", req.Dataset, op.Relation))
		}
		switch op.Op {
		case "append":
			delta.Append(op.Relation, op.Values...)
		case "delete":
			delta.Delete(op.Relation, op.Row)
		default:
			return MutateResult{}, invalidErr(fmt.Errorf("unknown mutation op %q", op.Op))
		}
	}
	v, err := delta.Commit()
	if err != nil {
		return MutateResult{}, invalidErr(err)
	}

	// Repair the previous version's unselected artifacts onto the new
	// version's keys before publishing the head: the new keys cannot be
	// queried yet, so the first post-swap query lands warm.
	repaired := s.repairArtifacts(e, cur, v)
	s.repairs.Add(int64(repaired))

	var purged map[uint64]bool
	e.shardMu.Lock()
	e.versions = append(e.versions, versionRecord{number: v.Number, fps: []uint64{v.Fingerprint}})
	e.advanceShardSetsLocked(v)
	// Retention: keep the current and previous version's artifact keys;
	// purge everything older in one sweep.
	for len(e.versions) > 2 {
		if purged == nil {
			purged = make(map[uint64]bool)
		}
		for _, fp := range e.versions[0].fps {
			purged[fp] = true
		}
		e.versions = e.versions[1:]
	}
	e.head.Store(v.Dataset)
	e.shardMu.Unlock()
	if purged != nil {
		s.cache.purge(func(k artifactKey) bool { return purged[k.dataset] })
	}
	s.mutations.Add(1)
	// The commit histogram covers writer serialization, the storage
	// commit, artifact repair and retention — the full write-path
	// latency a client observes.
	s.met.mutationCommit.Observe(s.now().Sub(mstart))

	res := MutateResult{
		Dataset:     req.Dataset,
		Version:     v.Number,
		Fingerprint: v.Fingerprint,
		Applied:     len(req.Ops),
		Repaired:    repaired,
		Rows:        make(map[string]int, v.Dataset.Tree.Len()),
	}
	for i := 0; i < v.Dataset.Tree.Len(); i++ {
		id := plan.NodeID(i)
		res.Rows[v.Dataset.Tree.Name(id)] = v.Dataset.Relation(id).NumRows()
	}
	for _, d := range v.Deltas {
		if d.Compacted {
			res.Compacted = append(res.Compacted, v.Dataset.Tree.Name(d.Rel))
		}
	}
	return res, nil
}

// repairArtifacts carries the previous snapshot's cached phase-1
// artifacts onto the committed version's cache keys. Only unselected
// artifacts (maskFP == 0) are repaired — selection-shaped masks would
// need re-evaluation against the new liveness, so they rebuild cold on
// next use, as do relations the commit compacted. Repaired tables are
// produced by hashtable.ApplyDelta and filters by Clone + AddKeys,
// both bit-identical to a cold build of the new version; untouched
// relations re-insert the same immutable pointers under the new key
// (their bytes are double-charged until the old version is purged —
// the shared backing arrays make the real cost far smaller, and
// MemoryBytes documents the conservative accounting).
func (s *Service) repairArtifacts(e *datasetEntry, cur *storage.Dataset, v storage.Version) int {
	oldFP, oldVer := cur.VersionFingerprint(), cur.Version()
	newDS := v.Dataset
	deltaOf := make(map[plan.NodeID]*storage.RelationDelta, len(v.Deltas))
	for i := range v.Deltas {
		deltaOf[v.Deltas[i].Rel] = &v.Deltas[i]
	}
	repaired := 0
	for _, id := range newDS.Tree.NonRoot() {
		keyCol := e.keyCols[id]
		d := deltaOf[id]
		if d != nil && d.Compacted {
			continue
		}
		okey := artifactKey{dataset: oldFP, version: oldVer, rel: id, keyCol: keyCol, kind: kindTable}
		nkey := artifactKey{dataset: v.Fingerprint, version: v.Number, rel: id, keyCol: keyCol, kind: kindTable}
		if ent := s.cache.peek(okey); ent != nil {
			nt := ent.table
			if d != nil {
				nt = nt.ApplyDelta(newDS.Relation(id), keyCol, hashtable.DeltaSpec{
					BaseRows:     newDS.BaseRows(id),
					BaseLive:     newDS.BaseLive(id),
					Live:         newDS.Live(id),
					AppendedFrom: d.AppendedFrom,
					Deleted:      d.Deleted,
				}, s.cfg.Parallelism, nil)
			}
			s.cache.put(&cacheEntry{key: nkey, table: nt, bytes: nt.MemoryBytes()})
			repaired++
		}
		okey.kind, nkey.kind = kindFilter, kindFilter
		if ent := s.cache.peek(okey); ent != nil {
			nf := ent.filter
			// Filter bits are liveness-independent and OR-monotone:
			// deletes change nothing, appends fold in the new keys.
			if d != nil && d.Appended > 0 {
				nf = nf.Clone()
				col := newDS.Relation(id).Column(keyCol)
				nf.AddKeys(col[d.AppendedFrom:])
			}
			s.cache.put(&cacheEntry{key: nkey, filter: nf, bytes: nf.MemoryBytes()})
			repaired++
		}
	}
	return repaired
}
