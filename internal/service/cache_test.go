package service

import (
	"testing"
)

func tkey(i int) artifactKey {
	return artifactKey{dataset: 1, rel: 1, keyCol: "k", maskFP: uint64(i), kind: kindTable}
}

// TestCacheLRUOrder: get promotes, put evicts from the cold end.
func TestCacheLRUOrder(t *testing.T) {
	c := newArtifactCache(300)
	for i := 0; i < 3; i++ {
		c.put(&cacheEntry{key: tkey(i), bytes: 100})
	}
	// Touch 0 so 1 becomes the LRU victim.
	if c.get(tkey(0)) == nil {
		t.Fatal("resident entry missed")
	}
	c.put(&cacheEntry{key: tkey(3), bytes: 100})
	if c.get(tkey(1)) != nil {
		t.Fatal("LRU victim survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if c.get(tkey(i)) == nil {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
	if st := c.stats(); st.Bytes != 300 || st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("bad stats %+v", st)
	}
}

// TestCacheRejectsOversizedArtifact: an artifact larger than the whole
// budget must not be admitted (the budget is a hard invariant), and
// must not evict the resident set to make room for a failed insert.
func TestCacheRejectsOversizedArtifact(t *testing.T) {
	c := newArtifactCache(300)
	c.put(&cacheEntry{key: tkey(0), bytes: 200})
	c.put(&cacheEntry{key: tkey(1), bytes: 500})
	if c.get(tkey(1)) != nil {
		t.Fatal("oversized artifact admitted")
	}
	if c.get(tkey(0)) == nil {
		t.Fatal("resident entry evicted for a rejected insert")
	}
	if st := c.stats(); st.Bytes != 200 {
		t.Fatalf("bytes %d after rejected insert, want 200", st.Bytes)
	}
}

// TestCacheDuplicatePutKeepsResident: racing builders may offer the
// same key twice; the second offer must not double-charge the budget.
func TestCacheDuplicatePutKeepsResident(t *testing.T) {
	c := newArtifactCache(300)
	c.put(&cacheEntry{key: tkey(0), bytes: 100})
	c.put(&cacheEntry{key: tkey(0), bytes: 100})
	if st := c.stats(); st.Bytes != 100 || st.Entries != 1 {
		t.Fatalf("duplicate put double-charged: %+v", st)
	}
}
