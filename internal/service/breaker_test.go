package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"m2mjoin/internal/faultinject"
)

// fakeClock is a manually advanced clock for deterministic breaker
// tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(cfg BreakerConfig) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return newBreaker(cfg, clk.now), clk
}

// mustAllow / mustShed assert one allow() outcome.
func mustAllow(t *testing.T, b *breaker) {
	t.Helper()
	if err := b.allow(); err != nil {
		t.Fatalf("allow() = %v, want admitted", err)
	}
}

func mustShed(t *testing.T, b *breaker) *QueryError {
	t.Helper()
	err := b.allow()
	if err == nil {
		t.Fatal("allow() admitted, want shed")
	}
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Class != ClassShed {
		t.Fatalf("allow() = %v, want ClassShed QueryError", err)
	}
	return qe
}

// TestBreakerOpensOnFailureRatio: enough failures in the window open
// the breaker; while open, queries shed with a Retry-After hint.
func TestBreakerOpensOnFailureRatio(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{MinSamples: 10, FailureRatio: 0.5, Cooldown: time.Second})

	// 5 successes, then failures until the ratio trips at >= 50% of
	// >= 10 samples.
	for i := 0; i < 5; i++ {
		mustAllow(t, b)
		b.done("", time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		mustAllow(t, b)
		b.done(ClassInternal, time.Millisecond)
	}
	if got := b.snapshot("ds").State; got != BreakerClosed {
		t.Fatalf("state %v after 9 samples (4 failures), want closed", got)
	}
	mustAllow(t, b)
	b.done(ClassTimeout, time.Millisecond) // 10 samples, 5 failures: trips

	if got := b.snapshot("ds").State; got != BreakerOpen {
		t.Fatalf("state %v, want open", got)
	}
	qe := mustShed(t, b)
	if qe.RetryAfter <= 0 {
		t.Fatalf("open breaker shed without a retry hint: %+v", qe)
	}
}

// TestBreakerHalfOpenRecovery: after the cooldown, a bounded number of
// probes are admitted; enough successes close the breaker with a clean
// window.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{
		MinSamples: 4, FailureRatio: 0.5, Cooldown: time.Second, HalfOpenProbes: 2,
	})
	for i := 0; i < 4; i++ {
		mustAllow(t, b)
		b.done(ClassInternal, time.Millisecond)
	}
	mustShed(t, b)

	clk.advance(1100 * time.Millisecond)
	// Exactly HalfOpenProbes admitted; the next is shed.
	mustAllow(t, b)
	mustAllow(t, b)
	mustShed(t, b)
	if got := b.snapshot("ds").State; got != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	b.done("", time.Millisecond)
	b.done("", time.Millisecond)

	snap := b.snapshot("ds")
	if snap.State != BreakerClosed {
		t.Fatalf("state %v after successful probes, want closed", snap.State)
	}
	if snap.WindowFailures != 0 {
		t.Fatalf("window not cleared on close: %+v", snap)
	}
}

// TestBreakerHalfOpenFailureReopens: one failed probe re-opens.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{
		MinSamples: 4, FailureRatio: 0.5, Cooldown: time.Second, HalfOpenProbes: 2,
	})
	for i := 0; i < 4; i++ {
		mustAllow(t, b)
		b.done(ClassInternal, time.Millisecond)
	}
	clk.advance(1100 * time.Millisecond)
	mustAllow(t, b)
	b.done(ClassTimeout, time.Millisecond)
	if got := b.snapshot("ds").State; got != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", got)
	}
	if opens := b.snapshot("ds").Opens; opens != 2 {
		t.Fatalf("opens = %d, want 2", opens)
	}
}

// TestBreakerIgnoresShedsAndCancels: shed and canceled outcomes affect
// neither the window nor half-open probe verdicts — the breaker cannot
// latch itself open on its own rejections.
func TestBreakerIgnoresShedsAndCancels(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{MinSamples: 4, FailureRatio: 0.5, Cooldown: time.Second})
	for i := 0; i < 100; i++ {
		mustAllow(t, b)
		b.done(ClassShed, time.Millisecond)
		mustAllow(t, b)
		b.done(ClassCanceled, time.Millisecond)
	}
	snap := b.snapshot("ds")
	if snap.State != BreakerClosed || snap.WindowOK != 0 || snap.WindowFailures != 0 {
		t.Fatalf("ignored outcomes leaked into the window: %+v", snap)
	}

	// A shed outcome in half-open releases the probe slot without
	// closing or re-opening.
	for i := 0; i < 4; i++ {
		mustAllow(t, b)
		b.done(ClassInternal, time.Millisecond)
	}
	clk.advance(1100 * time.Millisecond)
	mustAllow(t, b)
	b.done(ClassCanceled, time.Millisecond)
	if got := b.snapshot("ds").State; got != BreakerHalfOpen {
		t.Fatalf("state %v after canceled probe, want still half-open", got)
	}
	mustAllow(t, b) // slot was released
}

// TestBreakerWindowAges: failures age out of the sliding window, so a
// burst of old failures does not trip the breaker later.
func TestBreakerWindowAges(t *testing.T) {
	b, clk := testBreaker(BreakerConfig{
		Window: time.Second, Buckets: 4, MinSamples: 4, FailureRatio: 0.5,
	})
	for i := 0; i < 3; i++ {
		mustAllow(t, b)
		b.done(ClassInternal, time.Millisecond)
	}
	clk.advance(2 * time.Second) // all buckets age out
	mustAllow(t, b)
	b.done(ClassInternal, time.Millisecond)
	snap := b.snapshot("ds")
	if snap.State != BreakerClosed {
		t.Fatalf("stale failures tripped the breaker: %+v", snap)
	}
	if snap.WindowFailures != 1 {
		t.Fatalf("window failures = %d, want 1 (rest aged out)", snap.WindowFailures)
	}
}

// TestBreakerSlowCalls: with SlowCallThreshold set, slow successes
// count as failures.
func TestBreakerSlowCalls(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{
		MinSamples: 4, FailureRatio: 0.5, SlowCallThreshold: 10 * time.Millisecond,
	})
	for i := 0; i < 4; i++ {
		mustAllow(t, b)
		b.done("", 50*time.Millisecond) // success, but slow
	}
	if got := b.snapshot("ds").State; got != BreakerOpen {
		t.Fatalf("state %v after 4 slow calls, want open", got)
	}
}

// TestBreakerOpensUnderInjectedFaults: the full service path — a
// dataset whose every query fails on an injected engine fault trips
// its breaker, later queries are shed with a retry hint, and after the
// cooldown a successful probe closes it again.
func TestBreakerOpensUnderInjectedFaults(t *testing.T) {
	ds := genDataset(t, 800, 3)
	svc := New(Config{Parallelism: 2, MaxConcurrent: 1, Breaker: BreakerConfig{
		MinSamples: 4, FailureRatio: 0.5,
		Cooldown: 50 * time.Millisecond, HalfOpenProbes: 1,
	}})
	if _, err := svc.RegisterDataset("ds", ds); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := Request{Dataset: "ds", Strategy: "COM", FlatOutput: true, Parallelism: 2}

	faultinject.Enable(faultinject.Spec{
		Site: faultinject.SiteProbeChunk, Mode: faultinject.ModeError, Every: 1,
	})
	var sawShed *QueryError
	for i := 0; i < 20 && sawShed == nil; i++ {
		_, err := svc.Query(ctx, req)
		if err == nil {
			faultinject.Disable()
			t.Fatal("query succeeded with an every-hit fault armed")
		}
		var qe *QueryError
		if errors.As(err, &qe) && qe.Class == ClassShed {
			sawShed = qe
		}
	}
	faultinject.Disable()
	if sawShed == nil {
		t.Fatal("breaker never opened under sustained engine faults")
	}
	if sawShed.RetryAfter <= 0 {
		t.Fatalf("breaker shed without a retry hint: %+v", sawShed)
	}
	st := svc.Stats()
	if len(st.Breakers) != 1 || st.Breakers[0].State != BreakerOpen {
		t.Fatalf("stats do not show the open breaker: %+v", st.Breakers)
	}
	if st.Errors.Shed == 0 || st.Errors.Internal == 0 {
		t.Fatalf("error counters missed the failures: %+v", st.Errors)
	}

	// Recovery: after the cooldown the half-open probe runs fault-free,
	// closing the breaker.
	time.Sleep(60 * time.Millisecond)
	if _, err := svc.Query(ctx, req); err != nil {
		t.Fatalf("post-cooldown probe failed: %v", err)
	}
	if got := svc.Stats().Breakers[0].State; got != BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", got)
	}
}

// TestBreakerDisabled: a disabled breaker admits everything and
// records nothing.
func TestBreakerDisabled(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Disabled: true})
	for i := 0; i < 100; i++ {
		mustAllow(t, b)
		b.done(ClassInternal, time.Millisecond)
	}
	if got := b.snapshot("ds").State; got != BreakerClosed {
		t.Fatalf("disabled breaker left closed state: %v", got)
	}
}

// TestBreakerSnapshotRace is the -race regression for the /v1/stats
// snapshot path: snapshots racing allow/done across every state
// transition must be data-race free and always observe a consistent
// (state, window, probe-counter) tuple. Uses the real clock — a tiny
// window keeps the ring advancing constantly under the hammering.
func TestBreakerSnapshotRace(t *testing.T) {
	b := newBreaker(BreakerConfig{
		Window: 10 * time.Millisecond, Buckets: 2, MinSamples: 2,
		FailureRatio: 0.5, Cooldown: time.Millisecond, HalfOpenProbes: 1,
	}, time.Now)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if err := b.allow(); err == nil {
					cls := Class("")
					if (i+w)%3 == 0 {
						cls = ClassInternal
					}
					b.done(cls, time.Microsecond)
				}
			}
		}(w)
	}
	deadline := time.After(100 * time.Millisecond)
	for {
		stop := false
		select {
		case <-deadline:
			stop = true
		default:
		}
		snap := b.snapshot("race")
		if snap.WindowOK < 0 || snap.WindowFailures < 0 || snap.ProbesInFlight < 0 {
			t.Fatalf("inconsistent snapshot: %+v", snap)
		}
		switch snap.State {
		case BreakerClosed, BreakerOpen, BreakerHalfOpen:
		default:
			t.Fatalf("snapshot saw impossible state %q", snap.State)
		}
		if stop {
			break
		}
	}
	close(done)
	wg.Wait()
}
