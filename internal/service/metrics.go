package service

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"m2mjoin/internal/exec"
	"m2mjoin/internal/telemetry"
)

// This file wires the service's counters into the telemetry registry
// and implements the slow-query log. The wiring rule is: anything the
// service already counts natively (the atomic counters behind
// /v1/stats) is exposed as a CounterFunc/GaugeFunc shadow read at
// scrape time, so the Prometheus exposition can never drift from
// Stats — reconciliation is exact by construction, and a test pins it.
// Only quantities /v1/stats does not carry — latency distributions and
// the per-dataset executor-counter totals — get registry-owned
// instruments, recorded once per query on the return path.

// Metric family names. Exported through the exposition only; the
// constants keep recording sites and tests in sync.
const (
	metricQueries        = "m2m_queries_total"
	metricQueryErrors    = "m2m_query_errors_total"
	metricQueryDuration  = "m2m_query_duration_seconds"
	metricQueueWait      = "m2m_queue_wait_seconds"
	metricAttachWait     = "m2m_attach_wait_seconds"
	metricSharedScans    = "m2m_shared_scans_total"
	metricSharedMembers  = "m2m_shared_scan_members_total"
	metricMutations      = "m2m_mutations_total"
	metricRepairs        = "m2m_repairs_total"
	metricMutationCommit = "m2m_mutation_commit_seconds"
	metricArtifactBuild  = "m2m_artifact_build_seconds"
	metricScatterQueries = "m2m_scatter_queries_total"
	metricDegraded       = "m2m_degraded_results_total"
	metricShardRetries   = "m2m_shard_retries_total"
	metricHedges         = "m2m_hedges_total"
	metricHedgeWins      = "m2m_hedge_wins_total"
	metricHedgeCancels   = "m2m_hedge_cancels_total"
	metricShardDispatch  = "m2m_shard_dispatch_seconds"
	metricCacheHits      = "m2m_cache_hits_total"
	metricCacheMisses    = "m2m_cache_misses_total"
	metricCacheEvictions = "m2m_cache_evictions_total"
	metricCacheEntries   = "m2m_cache_entries"
	metricCacheBytes     = "m2m_cache_bytes"
	metricCacheLimit     = "m2m_cache_limit_bytes"
	metricActive         = "m2m_active_queries"
	metricQueued         = "m2m_queued_queries"
	metricDraining       = "m2m_draining"
	metricBreakerOpens   = "m2m_breaker_opens_total"
	metricBreakerState   = "m2m_breaker_state"

	metricExecHashProbes     = "m2m_exec_hash_probes_total"
	metricExecFilterProbes   = "m2m_exec_filter_probes_total"
	metricExecSemiJoinProbes = "m2m_exec_semijoin_probes_total"
	metricExecOutputTuples   = "m2m_exec_output_tuples_total"
	metricExecTagHits        = "m2m_exec_tag_hits_total"
	metricExecTagMisses      = "m2m_exec_tag_misses_total"
)

// serviceMetrics owns the service's registry and the directly recorded
// instruments (latency histograms and per-dataset executor counters);
// everything else is a scrape-time shadow over the service's native
// atomics.
type serviceMetrics struct {
	reg *telemetry.Registry

	queueWait      *telemetry.Histogram
	attachWait     *telemetry.Histogram
	mutationCommit *telemetry.Histogram
	buildHist      *telemetry.Histogram // m2m_artifact_build_seconds{kind="build"}
	repairHist     *telemetry.Histogram // m2m_artifact_build_seconds{kind="repair"}
}

// datasetMetrics is one dataset's executor-counter series, created at
// registration so the per-query record path is field adds, not map
// lookups.
type datasetMetrics struct {
	hashProbes     *telemetry.Counter
	filterProbes   *telemetry.Counter
	semiJoinProbes *telemetry.Counter
	outputTuples   *telemetry.Counter
	tagHits        *telemetry.Counter
	tagMisses      *telemetry.Counter
}

// newServiceMetrics builds the registry and registers every service-
// wide shadow metric. Called once from New, after the Service's own
// state exists.
func newServiceMetrics(s *Service) *serviceMetrics {
	reg := telemetry.NewRegistry()
	m := &serviceMetrics{reg: reg}

	reg.CounterFunc(metricQueries, "Queries admitted for execution.", nil, s.queries.Load)
	for _, ec := range []struct {
		cls Class
		fn  func() int64
	}{
		{ClassInvalid, s.errCounts.invalid.Load},
		{ClassTimeout, s.errCounts.timeout.Load},
		{ClassShed, s.errCounts.shed.Load},
		{ClassCanceled, s.errCounts.canceled.Load},
		{ClassInternal, s.errCounts.internal.Load},
	} {
		reg.CounterFunc(metricQueryErrors, "Failed queries by class.",
			telemetry.Labels{{Name: "class", Value: string(ec.cls)}}, ec.fn)
	}
	reg.CounterFunc(metricSharedScans, "Executed shared-scan passes.", nil, s.sharedScans.Load)
	reg.CounterFunc(metricSharedMembers, "Queries served through a shared scan.", nil, s.sharedMembers.Load)
	reg.CounterFunc(metricMutations, "Committed mutation batches.", nil, s.mutations.Load)
	reg.CounterFunc(metricRepairs, "Cached artifacts repaired onto a new version in place.", nil, s.repairs.Load)
	reg.CounterFunc(metricScatterQueries, "Client queries answered by scatter-gather.", nil, s.scatterQueries.Load)
	reg.CounterFunc(metricDegraded, "Degraded (partial-coverage) results returned.", nil, s.degraded.Load)
	reg.CounterFunc(metricShardRetries, "Shard dispatch retries.", nil, s.shardRetries.Load)
	reg.CounterFunc(metricHedges, "Hedged shard dispatches launched.", nil, s.hedges.Load)
	reg.CounterFunc(metricHedgeWins, "Hedged dispatches that answered first.", nil, s.hedgeWins.Load)
	reg.CounterFunc(metricHedgeCancels, "Hedges cancelled by the primary answering.", nil, s.hedgeCancels.Load)

	reg.CounterFunc(metricCacheHits, "Artifact cache hits.", nil, func() int64 { return s.cache.stats().Hits })
	reg.CounterFunc(metricCacheMisses, "Artifact cache misses.", nil, func() int64 { return s.cache.stats().Misses })
	reg.CounterFunc(metricCacheEvictions, "Artifact cache evictions.", nil, func() int64 { return s.cache.stats().Evictions })
	reg.GaugeFunc(metricCacheEntries, "Resident artifact cache entries.", nil, func() int64 { return int64(s.cache.stats().Entries) })
	reg.GaugeFunc(metricCacheBytes, "Resident artifact cache bytes.", nil, func() int64 { return s.cache.stats().Bytes })
	reg.GaugeFunc(metricCacheLimit, "Artifact cache byte budget.", nil, func() int64 { return s.cache.stats().Limit })

	reg.GaugeFunc(metricActive, "Queries currently admitted.", nil, func() int64 { return int64(s.admit.activeCount()) })
	reg.GaugeFunc(metricQueued, "Queries waiting for admission.", nil, func() int64 { return int64(s.admit.queuedCount()) })
	reg.GaugeFunc(metricDraining, "1 while the service is draining.", nil, func() int64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})

	m.queueWait = reg.Histogram(metricQueueWait, "Admission queue wait per admitted query.", nil)
	m.attachWait = reg.Histogram(metricAttachWait, "Shared-scan attach wait per member.", nil)
	m.mutationCommit = reg.Histogram(metricMutationCommit, "Mutation commit latency, including artifact repair.", nil)
	m.buildHist = reg.Histogram(metricArtifactBuild, "Hash-table build/repair latency by kind.",
		telemetry.Labels{{Name: "kind", Value: telemetry.BuildKindBuild}})
	m.repairHist = reg.Histogram(metricArtifactBuild, "Hash-table build/repair latency by kind.",
		telemetry.Labels{{Name: "kind", Value: telemetry.BuildKindRepair}})
	return m
}

// registerDataset adds one dataset's breaker shadow series and creates
// its executor-counter series. Dataset names are unique per service,
// so re-registration cannot occur.
func (m *serviceMetrics) registerDataset(e *datasetEntry) {
	name := e.name
	lbl := telemetry.Labels{{Name: "dataset", Value: name}}
	m.reg.CounterFunc(metricBreakerOpens, "Circuit breaker closed-to-open transitions by dataset.", lbl,
		func() int64 { return e.breaker.snapshot(name).Opens })
	m.reg.GaugeFunc(metricBreakerState, "Circuit breaker state by dataset (0 closed, 1 half-open, 2 open).", lbl,
		func() int64 { return breakerStateValue(e.breaker.snapshot(name).State) })
	e.met = &datasetMetrics{
		hashProbes:     m.reg.Counter(metricExecHashProbes, "Executor hash-table probes by dataset.", lbl),
		filterProbes:   m.reg.Counter(metricExecFilterProbes, "Executor bitvector-filter probes by dataset.", lbl),
		semiJoinProbes: m.reg.Counter(metricExecSemiJoinProbes, "Executor semi-join probes by dataset.", lbl),
		outputTuples:   m.reg.Counter(metricExecOutputTuples, "Result tuples produced by dataset.", lbl),
		tagHits:        m.reg.Counter(metricExecTagHits, "Bloom-tag directory hits by dataset.", lbl),
		tagMisses:      m.reg.Counter(metricExecTagMisses, "Bloom-tag directory misses by dataset.", lbl),
	}
}

func breakerStateValue(st BreakerState) int64 {
	switch st {
	case BreakerHalfOpen:
		return 1
	case BreakerOpen:
		return 2
	}
	return 0
}

// recordQuery records one finished Query call: the end-to-end latency
// histogram (class "ok" on success, the failure class otherwise), and
// — on success — the executor counters folded into the dataset's
// series from the very Stats the caller receives, so the registry
// totals reconcile exactly with client-side sums.
func (m *serviceMetrics) recordQuery(e *datasetEntry, dataset, strategy string, cls Class, total time.Duration, st *exec.Stats) {
	class := "ok"
	if cls != "" {
		class = string(cls)
	}
	if strategy == "" {
		strategy = "none"
	}
	m.reg.Histogram(metricQueryDuration, "End-to-end query latency (queueing included) by dataset, strategy and outcome class.",
		telemetry.Labels{
			{Name: "dataset", Value: dataset},
			{Name: "strategy", Value: strategy},
			{Name: "class", Value: class},
		}).Observe(total)
	if st == nil || e == nil || e.met == nil {
		return
	}
	dm := e.met
	dm.hashProbes.Add(st.HashProbes)
	dm.filterProbes.Add(st.FilterProbes)
	dm.semiJoinProbes.Add(st.SemiJoinProbes)
	dm.outputTuples.Add(st.OutputTuples)
	dm.tagHits.Add(st.TagHits)
	dm.tagMisses.Add(st.TagMisses)
}

// observeDispatch records one shard dispatch attempt's latency under
// its outcome ("ok" or the failure class).
func (m *serviceMetrics) observeDispatch(outcome string, d time.Duration) {
	m.reg.Histogram(metricShardDispatch, "Per-attempt shard dispatch latency by outcome.",
		telemetry.Labels{{Name: "outcome", Value: outcome}}).Observe(d)
}

// observeBuild is the telemetry build hook's landing point: cold
// hash-table builds and incremental delta repairs, timed inside
// internal/hashtable.
func (m *serviceMetrics) observeBuild(kind string, d time.Duration) {
	if kind == telemetry.BuildKindRepair {
		m.repairHist.Observe(d)
		return
	}
	m.buildHist.Observe(d)
}

// slowQueryLog emits one structured JSON line per query whose
// end-to-end latency reaches the threshold. The line carries the
// query's identity, outcome and a per-phase breakdown aggregated from
// its span tree — which is why enabling the slow-query log also turns
// on tracing for every query.
type slowQueryLog struct {
	threshold time.Duration

	mu sync.Mutex
	w  io.Writer
}

// slowQueryEntry is the slow-query log's line format.
type slowQueryEntry struct {
	Time     time.Time `json:"time"`
	Dataset  string    `json:"dataset"`
	Strategy string    `json:"strategy,omitempty"`
	// Class is the failure class, empty on success.
	Class        string  `json:"class,omitempty"`
	TotalMillis  float64 `json:"totalMillis"`
	QueuedMillis float64 `json:"queuedMillis"`
	// PhaseMillis sums span durations by span name across the query's
	// trace (the root "query" span excluded — TotalMillis covers it).
	PhaseMillis map[string]float64 `json:"phaseMillis,omitempty"`
}

// log renders one trace record as a slow-query line.
func (l *slowQueryLog) log(rec telemetry.TraceRecord) {
	entry := slowQueryEntry{
		Time:         rec.Time,
		Dataset:      rec.Dataset,
		Strategy:     rec.Strategy,
		Class:        rec.Class,
		TotalMillis:  rec.ElapsedMillis,
		QueuedMillis: rec.QueuedMillis,
		PhaseMillis:  phaseMillis(rec.Root),
	}
	b, err := json.Marshal(entry)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	l.w.Write(b)
	l.mu.Unlock()
}

// phaseMillis aggregates a span tree into per-phase totals by span
// name, skipping the root.
func phaseMillis(root *telemetry.SpanNode) map[string]float64 {
	if root == nil {
		return nil
	}
	out := make(map[string]float64)
	root.Each(func(depth int, n *telemetry.SpanNode) {
		if depth == 0 {
			return
		}
		out[n.Name] += float64(n.DurationNanos) / float64(time.Millisecond)
	})
	if len(out) == 0 {
		return nil
	}
	return out
}
