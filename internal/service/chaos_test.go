package service

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"m2mjoin/internal/exec"
	"m2mjoin/internal/faultinject"
)

// This file is the chaos suite: it arms every failpoint in the catalog
// in every mode and asserts the resilience invariants — no fault
// crashes the process, no fault leaks an admission slot, no fault
// corrupts the artifact cache, every failure surfaces with the right
// class, and every query that survives is bit-identical to a
// fault-free run.

var chaosStrategies = []string{"STD", "COM", "BVP+STD", "BVP+COM", "SJ+STD", "SJ+COM"}

const chaosPar = 2

func chaosRequest(strategy string) Request {
	return Request{Dataset: "ds", Strategy: strategy, FlatOutput: true, Parallelism: chaosPar}
}

// chaosBaseline runs every strategy fault-free on a fresh service and
// returns the per-strategy reference stats.
func chaosBaseline(t *testing.T, newSvc func() *Service) map[string]exec.Stats {
	t.Helper()
	svc := newSvc()
	base := make(map[string]exec.Stats, len(chaosStrategies))
	for _, s := range chaosStrategies {
		res, err := svc.Query(context.Background(), chaosRequest(s))
		if err != nil {
			t.Fatalf("baseline %s: %v", s, err)
		}
		if res.Stats.Checksum == 0 || res.Stats.OutputTuples == 0 {
			t.Fatalf("baseline %s: degenerate query proves nothing", s)
		}
		base[s] = stripCache(res.Stats)
	}
	return base
}

// TestChaosFailpoints arms each (site, mode) pair in turn and drives
// concurrent mixed-strategy traffic through it.
func TestChaosFailpoints(t *testing.T) {
	ds := genDataset(t, 1500, 7)
	newSvc := func() *Service {
		// The breaker is disabled here on purpose: this test's subject is
		// the failpoints' isolation invariants, and a breaker correctly
		// opening under injected faults would shed the later queries the
		// invariants need (the breaker has its own tests, including
		// TestBreakerOpensUnderInjectedFaults).
		svc := New(Config{Parallelism: 4, MaxConcurrent: 2, CacheBytes: 64 << 20,
			Breaker: BreakerConfig{Disabled: true}})
		if _, err := svc.RegisterDataset("ds", ds); err != nil {
			t.Fatal(err)
		}
		return svc
	}
	baseline := chaosBaseline(t, newSvc)
	ctx := context.Background()

	modes := []struct {
		name string
		mode faultinject.Mode
	}{
		{"error", faultinject.ModeError},
		{"panic", faultinject.ModePanic},
		{"delay", faultinject.ModeDelay},
	}
	for _, site := range faultinject.Sites() {
		if site == faultinject.SiteShardProbe || site == faultinject.SiteShardDispatch {
			// The shard sites never fire on an unsharded service; the
			// sharded chaos suite (shard_chaos_test.go) arms them against
			// a scattering service with the same invariants.
			continue
		}
		for _, m := range modes {
			t.Run(fmt.Sprintf("%s/%s", site, m.name), func(t *testing.T) {
				svc := newSvc()
				faultinject.Enable(faultinject.Spec{
					Site: site, Mode: m.mode, Every: 3, Delay: time.Millisecond,
				})

				var wg sync.WaitGroup
				var mu sync.Mutex
				var failures []error
				for w := 0; w < 2; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for _, s := range chaosStrategies {
							res, err := svc.Query(ctx, chaosRequest(s))
							if err != nil {
								mu.Lock()
								failures = append(failures, err)
								mu.Unlock()
								continue
							}
							// Survivor invariant: bit-identical to fault-free.
							if got := stripCache(res.Stats); !reflect.DeepEqual(got, baseline[s]) {
								t.Errorf("%s survivor diverged under faults:\nbase %+v\ngot  %+v",
									s, baseline[s], got)
							}
						}
					}()
				}
				wg.Wait()
				fired := faultinject.Stats()[site].Fires
				faultinject.Disable()
				if fired == 0 {
					t.Fatalf("failpoint %s never fired — the run proved nothing", site)
				}

				// Failure classification: delay faults never fail a query;
				// an admission error is shed load; everything else is an
				// internal engine failure.
				for _, err := range failures {
					cls := Classify(err)
					switch {
					case m.mode == faultinject.ModeDelay:
						t.Errorf("delay fault failed a query: %v", err)
					case site == faultinject.SiteAdmit && m.mode == faultinject.ModeError:
						if cls != ClassShed {
							t.Errorf("admission fault classified %s, want shed: %v", cls, err)
						}
					default:
						if cls != ClassInternal {
							t.Errorf("engine fault classified %s, want internal: %v", cls, err)
						}
					}
				}

				// No admission slot leaks: everything returned, so the
				// service must be fully idle.
				if st := svc.Stats(); st.Active != 0 || st.Queued != 0 {
					t.Fatalf("leaked admission state: active=%d queued=%d", st.Active, st.Queued)
				}

				// No cache corruption: with faults disarmed, every strategy
				// must still produce the fault-free bits on this service —
				// whatever mix of artifacts the faulted runs cached.
				for _, s := range chaosStrategies {
					res, err := svc.Query(ctx, chaosRequest(s))
					if err != nil {
						t.Fatalf("%s failed after disarm: %v", s, err)
					}
					if got := stripCache(res.Stats); !reflect.DeepEqual(got, baseline[s]) {
						t.Fatalf("%s diverged after disarm (corrupted cache?):\nbase %+v\ngot  %+v",
							s, baseline[s], got)
					}
				}
			})
		}
	}
}

// TestChaosProbabilisticSweep drives all strategies through a
// low-probability error fault at every site simultaneously — the
// "everything is a little broken" regime — and checks the same
// invariants in aggregate.
func TestChaosProbabilisticSweep(t *testing.T) {
	ds := genDataset(t, 1500, 7)
	newSvc := func() *Service {
		s := New(Config{Parallelism: 4, MaxConcurrent: 2, CacheBytes: 64 << 20,
			Breaker: BreakerConfig{Disabled: true}})
		if _, err := s.RegisterDataset("ds", ds); err != nil {
			t.Fatal(err)
		}
		return s
	}
	svc := newSvc()
	baseline := chaosBaseline(t, newSvc)

	specs := make([]faultinject.Spec, 0, len(faultinject.Sites()))
	for _, site := range faultinject.Sites() {
		specs = append(specs, faultinject.Spec{
			Site: site, Mode: faultinject.ModeError, Prob: 0.05, Seed: 99,
		})
	}
	faultinject.Enable(specs...)

	ctx := context.Background()
	var survivors, failed int
	for round := 0; round < 4; round++ {
		for _, s := range chaosStrategies {
			res, err := svc.Query(ctx, chaosRequest(s))
			if err != nil {
				failed++
				continue
			}
			survivors++
			if got := stripCache(res.Stats); !reflect.DeepEqual(got, baseline[s]) {
				t.Errorf("%s survivor diverged:\nbase %+v\ngot  %+v", s, baseline[s], got)
			}
		}
	}
	faultinject.Disable()
	if survivors == 0 {
		t.Fatal("no query survived p=0.05 faults; expected mostly survivors")
	}
	if st := svc.Stats(); st.Active != 0 || st.Queued != 0 {
		t.Fatalf("leaked admission state: active=%d queued=%d", st.Active, st.Queued)
	}
	t.Logf("sweep: %d survivors, %d failed", survivors, failed)
}

// TestCancelRacingCacheMissLeavesCacheClean: cancelling a query while
// it is mid-build (a cache miss in flight) must never leave a partial
// artifact behind — artifacts are inserted only after a complete
// build. A delay failpoint stretches the build so the cancellation
// reliably lands inside it; afterwards, concurrent warm queries must
// be bit-identical to the fault-free baseline.
func TestCancelRacingCacheMissLeavesCacheClean(t *testing.T) {
	ds := genDataset(t, 3000, 11)
	svc := New(Config{Parallelism: 4, MaxConcurrent: 2, CacheBytes: 64 << 20})
	if _, err := svc.RegisterDataset("ds", ds); err != nil {
		t.Fatal(err)
	}
	req := chaosRequest("BVP+COM") // tables and filters: most artifact kinds

	baseSvc := New(Config{Parallelism: 4, MaxConcurrent: 2, CacheBytes: 64 << 20})
	if _, err := baseSvc.RegisterDataset("ds", ds); err != nil {
		t.Fatal(err)
	}
	baseRes, err := baseSvc.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	baseline := stripCache(baseRes.Stats)

	// Stretch every build morsel so cancellation lands mid-build.
	faultinject.Enable(faultinject.Spec{
		Site: faultinject.SiteBuildMorsel, Mode: faultinject.ModeDelay,
		Every: 1, Delay: 2 * time.Millisecond,
	})
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := svc.Query(ctx, req)
			done <- err
		}()
		time.Sleep(time.Duration(i) * 500 * time.Microsecond)
		cancel()
		<-done // success or cancellation — both fine; the invariant is below
	}
	faultinject.Disable()

	// Two concurrent queries on whatever the races left cached: both
	// must succeed with fault-free bits.
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := svc.Query(context.Background(), req)
			if err != nil {
				t.Errorf("post-race query failed: %v", err)
				return
			}
			if got := stripCache(res.Stats); !reflect.DeepEqual(got, baseline) {
				t.Errorf("post-race query diverged (partial artifact?):\nbase %+v\ngot  %+v",
					baseline, got)
			}
		}()
	}
	wg.Wait()
	if st := svc.Stats(); st.Active != 0 || st.Queued != 0 {
		t.Fatalf("leaked admission state: active=%d queued=%d", st.Active, st.Queued)
	}
}
