package service

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// This file is the closed-loop load generator behind cmd/m2mload: a
// fixed number of clients each issue their next query as soon as the
// previous one returns, drawing query templates from a Zipf-skewed
// popularity distribution — the repeated-query, multi-tenant traffic
// shape the artifact cache exists for. Popular templates re-hit their
// cached artifacts; the skew tail keeps generating misses, so a run
// exercises mixed hit/miss traffic, admission queueing and concurrent
// probing of shared structures.

// Runner abstracts the query target so the generator drives either an
// in-process *Service or a remote m2mserve over HTTP.
type Runner interface {
	Query(ctx context.Context, req Request) (Result, error)
}

// LoadConfig configures one load run.
type LoadConfig struct {
	// Duration is the wall-time budget (default 5s).
	Duration time.Duration
	// Clients is the number of closed-loop workers (default 4).
	Clients int
	// Templates is the query mix; template i's popularity follows a
	// Zipf distribution over the slice order (earlier = more popular).
	Templates []Request
	// ZipfS is the Zipf skew exponent (> 1; default 1.3).
	ZipfS float64
	// Seed makes template draws deterministic per client.
	Seed int64
	// QueryTimeout, when nonzero, is stamped onto every request as its
	// per-query deadline (Request.TimeoutMillis).
	QueryTimeout time.Duration
	// MaxRetries bounds how many times one query is retried after a
	// retryable failure (shed or timeout; default 0 = no retries).
	// Invalid, canceled and internal errors are never retried.
	MaxRetries int
	// RetryBase / RetryMax shape the exponential backoff between
	// retries (defaults 10ms / 1s). A server Retry-After hint overrides
	// the computed backoff when it is longer, capped at QueryTimeout —
	// a fresh attempt could not spend more than that anyway.
	RetryBase time.Duration
	RetryMax  time.Duration
	// MinCoverage, when positive, is stamped onto every request: on a
	// sharded server, degraded results at or above this coverage count
	// as successes (tallied in LoadReport.Degraded) instead of errors.
	MinCoverage float64
}

// ErrorBreakdown counts one load run's failures by class. Only
// Internal (and Invalid, which indicates a broken mix) represent
// engine trouble; timeouts and sheds are the resilience layer doing
// its job under overload.
type ErrorBreakdown struct {
	Timeout  int64 `json:"timeout,omitempty"`
	Shed     int64 `json:"shed,omitempty"`
	Canceled int64 `json:"canceled,omitempty"`
	Invalid  int64 `json:"invalid,omitempty"`
	Internal int64 `json:"internal,omitempty"`
}

func (b *ErrorBreakdown) add(o ErrorBreakdown) {
	b.Timeout += o.Timeout
	b.Shed += o.Shed
	b.Canceled += o.Canceled
	b.Invalid += o.Invalid
	b.Internal += o.Internal
}

func (b *ErrorBreakdown) record(cls Class) {
	switch cls {
	case ClassTimeout:
		b.Timeout++
	case ClassShed:
		b.Shed++
	case ClassCanceled:
		b.Canceled++
	case ClassInvalid:
		b.Invalid++
	default:
		b.Internal++
	}
}

// LoadReport aggregates a load run.
type LoadReport struct {
	Queries  int64         `json:"queries"`
	Errors   int64         `json:"errors"`
	Duration time.Duration `json:"durationNs"`
	QPS      float64       `json:"qps"`
	P50      time.Duration `json:"p50Ns"`
	P95      time.Duration `json:"p95Ns"`
	P99      time.Duration `json:"p99Ns"`
	Max      time.Duration `json:"maxNs"`
	// ErrorsByClass breaks Errors down by failure class; Retries counts
	// re-issues that followed a retryable (shed/timeout) failure. A
	// query that eventually succeeded after retries contributes to
	// Retries but not to Errors.
	ErrorsByClass ErrorBreakdown `json:"errorsByClass"`
	Retries       int64          `json:"retries"`
	// Degraded counts successful queries answered with partial shard
	// coverage (Result.Coverage < 1 under LoadConfig.MinCoverage).
	Degraded int64 `json:"degraded,omitempty"`
	// CacheHits/CacheMisses sum the per-query artifact counters across
	// all issued queries.
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	// OutputTuples sums emitted result tuples (a cheap integrity pulse:
	// zero everywhere usually means a broken mix).
	OutputTuples int64 `json:"outputTuples"`
}

// StandardMix registers a mixed-shape set of generated datasets on the
// service and returns a template list over them: per dataset an
// auto-planned query, two fixed-strategy queries (one build-bound, one
// cache-bypassing SJ), and a selection variant that keys separate
// artifacts — mixed hit/miss traffic by construction.
func StandardMix(s *Service, rows int, seed int64) ([]Request, error) {
	if rows <= 0 {
		rows = 5000
	}
	shapes := []string{"snowflake32", "star", "path"}
	var templates []Request
	for i, shape := range shapes {
		name := fmt.Sprintf("load_%s", shape)
		if _, err := s.RegisterGenerated(GenerateSpec{
			Name: name, Shape: shape, Rows: rows, Seed: seed + int64(i),
		}); err != nil {
			return nil, err
		}
		driver := s.entry(name).ds.Tree.Name(0)
		templates = append(templates,
			Request{Dataset: name},
			Request{Dataset: name, Strategy: "BVP+COM"},
			Request{Dataset: name, Strategy: "SJ+COM"},
			Request{Dataset: name, Strategy: "COM", Selections: []SelectionSpec{
				{Relation: driver, Column: "id", Value: int64(i)},
			}},
		)
	}
	return templates, nil
}

// RunLoad drives the runner with cfg.Clients closed-loop workers for
// cfg.Duration and aggregates latency and cache statistics. It returns
// early (with the partial report) if ctx is cancelled.
func RunLoad(ctx context.Context, r Runner, cfg LoadConfig) (LoadReport, error) {
	if len(cfg.Templates) == 0 {
		return LoadReport{}, fmt.Errorf("service: load run needs at least one template")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 10 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Second
	}
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	type clientAgg struct {
		latencies            []time.Duration
		errors               int64
		breakdown            ErrorBreakdown
		retries              int64
		degraded             int64
		hits, misses, tuples int64
	}
	aggs := make([]clientAgg, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			agg := &aggs[ci]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*1000003))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Templates)-1))
			for runCtx.Err() == nil {
				req := cfg.Templates[zipf.Uint64()]
				if cfg.QueryTimeout > 0 {
					req.TimeoutMillis = cfg.QueryTimeout.Milliseconds()
				}
				if cfg.MinCoverage > 0 {
					req.MinCoverage = cfg.MinCoverage
				}
				t0 := time.Now()
				res, err := queryWithRetry(runCtx, r, req, cfg, rng, &agg.retries)
				if err != nil {
					// The deadline firing mid-query is the normal end of
					// a closed loop, not a workload error.
					if runCtx.Err() == nil {
						agg.errors++
						agg.breakdown.record(Classify(err))
					}
					continue
				}
				agg.latencies = append(agg.latencies, time.Since(t0))
				if res.Coverage > 0 && res.Coverage < 1 {
					agg.degraded++
				}
				agg.hits += res.Stats.CacheHits
				agg.misses += res.Stats.CacheMisses
				agg.tuples += res.Stats.OutputTuples
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var report LoadReport
	var all []time.Duration
	for i := range aggs {
		all = append(all, aggs[i].latencies...)
		report.Errors += aggs[i].errors
		report.ErrorsByClass.add(aggs[i].breakdown)
		report.Retries += aggs[i].retries
		report.Degraded += aggs[i].degraded
		report.CacheHits += aggs[i].hits
		report.CacheMisses += aggs[i].misses
		report.OutputTuples += aggs[i].tuples
	}
	report.Queries = int64(len(all))
	report.Duration = elapsed
	if elapsed > 0 {
		report.QPS = float64(report.Queries) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(all)-1))
			return all[i]
		}
		report.P50 = pct(0.50)
		report.P95 = pct(0.95)
		report.P99 = pct(0.99)
		report.Max = all[len(all)-1]
	}
	return report, nil
}

// queryWithRetry issues one query, retrying retryable failures (shed,
// timeout) up to cfg.MaxRetries times with exponential backoff. The
// server's Retry-After hint, when present and longer than the computed
// backoff, wins — but is capped at the per-query timeout budget, since
// an overloaded server's hint can exceed what any fresh attempt would
// be allowed to spend. Backoff is jittered ±20% so retries from
// concurrent clients decorrelate instead of stampeding a recovering
// server in lockstep. Non-retryable failures and run-deadline expiry
// return immediately.
func queryWithRetry(ctx context.Context, r Runner, req Request, cfg LoadConfig, rng *rand.Rand, retries *int64) (Result, error) {
	var res Result
	var err error
	backoff := cfg.RetryBase
	for attempt := 0; ; attempt++ {
		res, err = r.Query(ctx, req)
		if err == nil || attempt >= cfg.MaxRetries ||
			!Retryable(Classify(err)) || ctx.Err() != nil {
			return res, err
		}
		wait := backoff
		if hint := RetryAfterHint(err); hint > wait {
			if cfg.QueryTimeout > 0 && hint > cfg.QueryTimeout {
				hint = cfg.QueryTimeout
			}
			if hint > wait {
				wait = hint
			}
		}
		// Jitter ±20%.
		wait += time.Duration((rng.Float64() - 0.5) * 0.4 * float64(wait))
		select {
		case <-ctx.Done():
			return res, err
		case <-time.After(wait):
		}
		*retries++
		if backoff *= 2; backoff > cfg.RetryMax {
			backoff = cfg.RetryMax
		}
	}
}

// String renders the report as the m2mload summary block.
func (r LoadReport) String() string {
	hitRate := 0.0
	if r.CacheHits+r.CacheMisses > 0 {
		hitRate = float64(r.CacheHits) / float64(r.CacheHits+r.CacheMisses)
	}
	b := r.ErrorsByClass
	return fmt.Sprintf(
		"queries=%d errors=%d retries=%d degraded=%d elapsed=%v qps=%.1f\n"+
			"errors by class: timeout=%d shed=%d canceled=%d invalid=%d internal=%d\n"+
			"latency p50=%v p95=%v p99=%v max=%v\n"+
			"artifact cache: hits=%d misses=%d hit-rate=%.1f%%\n"+
			"output tuples: %d",
		r.Queries, r.Errors, r.Retries, r.Degraded, r.Duration.Round(time.Millisecond), r.QPS,
		b.Timeout, b.Shed, b.Canceled, b.Invalid, b.Internal,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond),
		r.CacheHits, r.CacheMisses, 100*hitRate, r.OutputTuples)
}
