package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"m2mjoin/internal/plan"
)

// treeFromSeed derives a random tree and model deterministically from
// quick-generated inputs.
func treeFromSeed(seed int64, size uint8, mLo, mHi float64) (*plan.Tree, *Model) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + int(size%7)
	tr := plan.RandomTree(n, rng, plan.UniformStats(rng, mLo, mHi, 1, 8))
	return tr, New(tr, DefaultWeights())
}

// TestQuickSurvivalInUnitInterval: m_T is a probability for every
// connected prefix of every random tree.
func TestQuickSurvivalInUnitInterval(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		tr, m := treeFromSeed(seed, size, 0.05, 0.95)
		done := map[plan.NodeID]bool{plan.Root: true}
		rng := rand.New(rand.NewSource(seed ^ 0x5555))
		for len(done) < tr.Len() {
			fr := tr.Frontier(done)
			done[fr[rng.Intn(len(fr))]] = true
			s := m.SurvivalTree(plan.Root, done)
			if s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSurvivalBoundedByMinEdge: the survival probability of a
// prefix never exceeds the smallest match probability among the edges
// on any root-to-leaf requirement... specifically it is at most the
// match probability of any single included child of the root.
func TestQuickSurvivalBoundedByMinEdge(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		tr, m := treeFromSeed(seed, size, 0.05, 0.95)
		done := map[plan.NodeID]bool{plan.Root: true}
		for _, id := range tr.NonRoot() {
			done[id] = true
		}
		s := m.SurvivalTree(plan.Root, done)
		for _, c := range tr.Children(plan.Root) {
			if s > tr.Stats(c).M+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickProbesCOMAtMostExpandedStream: Eq. (1) never exceeds the
// standard model's fully expanded stream for the same prefix.
func TestQuickProbesCOMAtMostExpandedStream(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		tr, m := treeFromSeed(seed, size, 0.05, 0.95)
		rng := rand.New(rand.NewSource(seed ^ 0x7777))
		done := map[plan.NodeID]bool{plan.Root: true}
		stream := 1.0
		for len(done) < tr.Len() {
			fr := tr.Frontier(done)
			next := fr[rng.Intn(len(fr))]
			if m.ProbesCOM(next, done) > stream*(1+1e-9) {
				return false
			}
			st := tr.Stats(next)
			stream *= st.M * st.Fo
			done[next] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickAdjustedStatsSelectivity: Theorem 3.4's identity holds for
// arbitrary quick-generated parameters.
func TestQuickAdjustedStatsSelectivity(t *testing.T) {
	f := func(mRaw, foRaw, ratioRaw uint16) bool {
		m := 0.01 + 0.98*float64(mRaw)/65535
		fo := 1 + 30*float64(foRaw)/65535
		ratio := 0.01 + 0.98*float64(ratioRaw)/65535
		adj := AdjustedStats(plan.EdgeStats{M: m, Fo: fo}, ratio)
		want := ratio * m * fo
		return math.Abs(adj.M*adj.Fo-want) <= 1e-9*want &&
			adj.M <= m+1e-12 && adj.Fo <= fo+1e-12 && adj.Fo >= 1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickMarginalSetInvariance: the marginal cost of a candidate
// depends only on the joined set, never on the order the set was
// assembled in — the keystone of Algorithm 1 (and Theorem 3.3 for the
// BVP strategies). We reach the same set via two random orders and
// compare every frontier candidate's marginal under every strategy.
func TestQuickMarginalSetInvariance(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		tr, m := treeFromSeed(seed, size, 0.05, 0.95)
		if tr.Len() < 4 {
			return true
		}
		rng := rand.New(rand.NewSource(seed ^ 0x9999))
		// Assemble a random half-size connected set twice (the map is
		// the same; the point is the API takes only the set, so this
		// guards against future implementations sneaking in order
		// state). Then check cross-strategy marginal consistency with a
		// freshly built equal set.
		target := 1 + tr.Len()/2
		set1 := map[plan.NodeID]bool{plan.Root: true}
		for len(set1) < target {
			fr := tr.Frontier(set1)
			set1[fr[rng.Intn(len(fr))]] = true
		}
		set2 := make(map[plan.NodeID]bool, len(set1))
		for k, v := range set1 {
			set2[k] = v
		}
		for _, cand := range tr.Frontier(set1) {
			for _, s := range AllStrategies {
				a := m.Marginal(s, cand, set1)
				b := m.Marginal(s, cand, set2)
				if math.Abs(a-b) > 1e-12*math.Max(a, 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSJPhase1Positive: phase-1 semi-join probes are positive and
// bounded by the total relative cardinality times the number of edges.
func TestQuickSJPhase1Positive(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		tr, m := treeFromSeed(seed, size, 0.05, 0.95)
		probes := m.Phase1Probes()
		if probes <= 0 {
			return false
		}
		bound := 0.0
		for i := 0; i < tr.Len(); i++ {
			bound += m.RelCard(plan.NodeID(i))
		}
		bound *= float64(tr.Len())
		return probes <= bound*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickCostsPositiveAndFinite: every strategy's cost is positive
// and finite on arbitrary random instances and orders.
func TestQuickCostsPositiveAndFinite(t *testing.T) {
	f := func(seed int64, size uint8, flat bool) bool {
		tr, m := treeFromSeed(seed, size, 0.02, 0.98)
		rng := rand.New(rand.NewSource(seed ^ 0x3333))
		done := map[plan.NodeID]bool{plan.Root: true}
		var order plan.Order
		for len(order) < tr.Len()-1 {
			fr := tr.Frontier(done)
			next := fr[rng.Intn(len(fr))]
			order = append(order, next)
			done[next] = true
		}
		for _, s := range AllStrategies {
			pc := m.Cost(s, order, flat)
			if !(pc.Total > 0) || math.IsInf(pc.Total, 0) || math.IsNaN(pc.Total) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
