package cost

import (
	"sort"

	"m2mjoin/internal/plan"
)

// Marginal returns the cost added by joining cand immediately after the
// connected prefix `set` (which must contain the driver and cand's
// parent, but not cand), under strategy s. The marginal depends only on
// the set — not on the order the set was joined in — which is the
// principle of optimality that Algorithm 1 relies on (and that Theorem
// 3.3 establishes for BVP with a fixed driver). Expansion costs are
// excluded; they are order-independent and added once at the end.
//
// For every strategy, summing Marginal over the steps of a full order
// (plus the order-independent phase-1/expansion terms) reproduces the
// corresponding Cost* function; this identity is checked in tests.
func (m *Model) Marginal(s Strategy, cand plan.NodeID, set map[plan.NodeID]bool) float64 {
	switch s {
	case STD:
		return m.marginalSTD(cand, set)
	case COM:
		return m.ProbesCOM(cand, set) * m.ProbeCost(cand)
	case BVPSTD:
		return m.marginalBVPSTD(cand, set)
	case BVPCOM:
		return m.marginalBVPCOM(cand, set)
	case SJSTD:
		return m.marginalSJSTD(cand, set)
	case SJCOM:
		return m.marginalSJCOM(cand)
	default:
		panic("cost: unknown strategy")
	}
}

// InitialFilterProbes returns the bitvector probes (in raw probe
// units, unweighted) charged against the driver before the first join:
// the bitvectors of all the driver's children are applied sequentially.
// The quantity is independent of the join order, so the exhaustive DP
// can ignore it; it is needed to reconstruct full BVP plan costs from
// marginals.
func (m *Model) InitialFilterProbes() float64 {
	eps := m.weights.Epsilon
	stream := 1.0
	probes := 0.0
	for _, c := range m.childrenByID(plan.Root, map[plan.NodeID]bool{plan.Root: true}) {
		probes += stream
		stream *= m.tree.Stats(c).M + eps
	}
	return probes
}

func (m *Model) marginalSTD(cand plan.NodeID, set map[plan.NodeID]bool) float64 {
	stream := 1.0
	for id := range set {
		if id == plan.Root {
			continue
		}
		st := m.tree.Stats(id)
		stream *= st.M * st.Fo
	}
	return stream * m.ProbeCost(cand)
}

// childrenByID returns the not-yet-joined children of id in ascending
// NodeID order: the deterministic order in which their bitvectors are
// applied when id materializes.
func (m *Model) childrenByID(id plan.NodeID, joined map[plan.NodeID]bool) []plan.NodeID {
	var out []plan.NodeID
	for _, c := range m.tree.Children(id) {
		if !joined[c] {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// marginalBVPSTD: hash probes into cand plus the filter probes of the
// bitvectors applied when cand materializes. The stream entering cand's
// probe is the product of m*fo over joined relations and (m+eps) over
// the frontier (whose bitvectors have been applied but whose joins are
// pending) — a function of the set only.
func (m *Model) marginalBVPSTD(cand plan.NodeID, set map[plan.NodeID]bool) float64 {
	eps := m.weights.Epsilon
	stream := 1.0
	for id := range set {
		if id == plan.Root {
			continue
		}
		st := m.tree.Stats(id)
		stream *= st.M * st.Fo
	}
	for _, f := range m.tree.Frontier(set) {
		stream *= m.tree.Stats(f).M + eps
	}
	total := stream * m.ProbeCost(cand) // hash probes into cand

	// After the join: absorb cand's bitvector factor into its true
	// match probability and fan out, then apply cand's children's
	// bitvectors sequentially.
	st := m.tree.Stats(cand)
	stream *= st.M / (st.M + eps) * st.Fo
	for _, c := range m.childrenByID(cand, set) {
		total += m.weights.Filter * stream
		stream *= m.tree.Stats(c).M + eps
	}
	return total
}

// bvpStateFor builds the (done, pending) state implied by a joined set:
// pending is exactly the frontier, since every relation's bitvector is
// applied the moment its parent materializes.
func (m *Model) bvpStateFor(set map[plan.NodeID]bool) *bvpState {
	st := newBVPState(m.tree.Len())
	for id := range set {
		st.done[id] = true
	}
	for _, f := range m.tree.Frontier(set) {
		st.pending[f] = true
	}
	return st
}

func (m *Model) marginalBVPCOM(cand plan.NodeID, set map[plan.NodeID]bool) float64 {
	st := m.bvpStateFor(set)
	total := m.levelCountBVP(m.tree.Parent(cand), st) * m.ProbeCost(cand)

	// Apply cand's children's bitvectors: cand becomes done, and each
	// child's filter sees cand's live rows before its own factor lands.
	delete(st.pending, cand)
	st.done[cand] = true
	for _, c := range m.childrenByID(cand, set) {
		total += m.weights.Filter * m.levelCountBVP(cand, st)
		st.pending[c] = true
	}
	return total
}

func (m *Model) marginalSJSTD(cand plan.NodeID, set map[plan.NodeID]bool) float64 {
	stream := m.ReductionRatio(plan.Root)
	for id := range set {
		if id == plan.Root {
			continue
		}
		stream *= m.adjustedFo(id)
	}
	return stream * m.ProbeCost(cand)
}

func (m *Model) marginalSJCOM(cand plan.NodeID) float64 {
	probes := m.ReductionRatio(plan.Root)
	for _, a := range m.tree.PathToRoot(cand) {
		if a != plan.Root {
			probes *= m.adjustedFo(a)
		}
	}
	return probes * m.ProbeCost(cand)
}
