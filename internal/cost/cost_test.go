package cost

import (
	"math"
	"math/rand"
	"testing"

	"m2mjoin/internal/plan"
)

// runningExample builds the 6-relation query of Fig. 1 with symbolic
// statistics matching Section 3.3's worked derivation.
func runningExample() (*plan.Tree, map[string]plan.NodeID) {
	t := plan.NewTree("R1")
	ids := map[string]plan.NodeID{"R1": plan.Root}
	ids["R2"] = t.AddChild(plan.Root, plan.EdgeStats{M: 0.5, Fo: 3}, "R2")
	ids["R3"] = t.AddChild(ids["R2"], plan.EdgeStats{M: 0.4, Fo: 2}, "R3")
	ids["R4"] = t.AddChild(ids["R2"], plan.EdgeStats{M: 0.6, Fo: 2}, "R4")
	ids["R5"] = t.AddChild(plan.Root, plan.EdgeStats{M: 0.7, Fo: 2}, "R5")
	ids["R6"] = t.AddChild(ids["R5"], plan.EdgeStats{M: 0.8, Fo: 3}, "R6")
	return t, ids
}

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// TestCOMProbesRunningExample reproduces Section 3.3's derivation for
// the plan R2, R3, R5, R4, R6 term by term.
func TestCOMProbesRunningExample(t *testing.T) {
	tr, ids := runningExample()
	m2, fo2 := tr.Stats(ids["R2"]).M, tr.Stats(ids["R2"]).Fo
	m3, fo3 := tr.Stats(ids["R3"]).M, tr.Stats(ids["R3"]).Fo
	m4 := tr.Stats(ids["R4"]).M
	m5, fo5 := tr.Stats(ids["R5"]).M, tr.Stats(ids["R5"]).Fo
	_ = fo3
	model := New(tr, DefaultWeights())

	done := map[plan.NodeID]bool{plan.Root: true}
	// Probes into R2: first join, N probes (1 per driver tuple).
	if got := model.ProbesCOM(ids["R2"], done); !almostEqual(got, 1) {
		t.Errorf("probes R2 = %v, want 1", got)
	}
	done[ids["R2"]] = true
	// Probes into R3: N * m2 * fo2.
	if got, want := model.ProbesCOM(ids["R3"], done), m2*fo2; !almostEqual(got, want) {
		t.Errorf("probes R3 = %v, want %v", got, want)
	}
	done[ids["R3"]] = true
	// Probes into R5: m2 * (1 - (1-m3)^fo2)   [survival of {R2,R3}]
	want := m2 * (1 - math.Pow(1-m3, fo2))
	if got := model.ProbesCOM(ids["R5"], done); !almostEqual(got, want) {
		t.Errorf("probes R5 = %v, want %v", got, want)
	}
	done[ids["R5"]] = true
	// Probes into R4: N * m2 * m5 * fo2 * m3.
	want = m2 * m5 * fo2 * m3
	if got := model.ProbesCOM(ids["R4"], done); !almostEqual(got, want) {
		t.Errorf("probes R4 = %v, want %v", got, want)
	}
	done[ids["R4"]] = true
	// Probes into R6: m_{1,2,3,4} * m5 * fo5, where
	// m_{1,2,3,4} = m2 * (1 - (1 - m3*m4)^fo2).
	m1234 := m2 * (1 - math.Pow(1-m3*m4, fo2))
	want = m1234 * m5 * fo5
	if got := model.ProbesCOM(ids["R6"], done); !almostEqual(got, want) {
		t.Errorf("probes R6 = %v, want %v", got, want)
	}
}

// TestSTDCostRunningExample checks the standard-execution cost formula
// from Section 3.3 (the contrast expression).
func TestSTDCostRunningExample(t *testing.T) {
	tr, ids := runningExample()
	m2, fo2 := tr.Stats(ids["R2"]).M, tr.Stats(ids["R2"]).Fo
	m3, fo3 := tr.Stats(ids["R3"]).M, tr.Stats(ids["R3"]).Fo
	m5, fo5 := tr.Stats(ids["R5"]).M, tr.Stats(ids["R5"]).Fo
	m4, fo4 := tr.Stats(ids["R4"]).M, tr.Stats(ids["R4"]).Fo
	_ = fo4
	model := New(tr, DefaultWeights())

	o := plan.Order{ids["R2"], ids["R3"], ids["R5"], ids["R4"], ids["R6"]}
	got := model.CostSTD(o).HashProbes
	want := 1 + m2*fo2 + m2*fo2*m3*fo3 + m2*fo2*m3*fo3*m5*fo5 +
		m2*fo2*m3*fo3*m5*fo5*m4*fo4
	if !almostEqual(got, want) {
		t.Errorf("STD probes = %v, want %v", got, want)
	}
}

// TestCOMEqualsSTDWhenFanoutOne: the paper notes the two cost
// expressions coincide when all fanouts are 1.
func TestCOMEqualsSTDWhenFanoutOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		tr := plan.RandomTree(2+rng.Intn(8), rng, func() plan.EdgeStats {
			return plan.EdgeStats{M: 0.1 + rng.Float64()*0.8, Fo: 1}
		})
		model := New(tr, DefaultWeights())
		for _, o := range tr.AllOrders() {
			std := model.CostSTD(o).HashProbes
			com := model.CostCOM(o, false).HashProbes
			if !almostEqual(std, com) {
				t.Fatalf("fo=1 but STD %v != COM %v for %v on %v", std, com, o, tr)
			}
		}
	}
}

// TestCOMNeverWorseThanSTD: avoiding redundant probes can only reduce
// the probe count, for any order and statistics.
func TestCOMNeverWorseThanSTD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		tr := plan.RandomTree(2+rng.Intn(7), rng,
			plan.UniformStats(rng, 0.05, 0.95, 1, 10))
		model := New(tr, DefaultWeights())
		for _, o := range tr.AllOrders() {
			std := model.CostSTD(o).HashProbes
			com := model.CostCOM(o, false).HashProbes
			if com > std*(1+1e-9) {
				t.Fatalf("COM probes %v > STD probes %v for %v on %v", com, std, o, tr)
			}
		}
	}
}

// TestCOMOrderInvariantPrefix: Equation (1) does not depend on the
// order in which the prefix was joined, only on the set (the paper's
// observation below Eq. 1).
func TestCOMOrderInvariantPrefix(t *testing.T) {
	tr, ids := runningExample()
	model := New(tr, DefaultWeights())
	done1 := map[plan.NodeID]bool{plan.Root: true, ids["R2"]: true, ids["R3"]: true, ids["R5"]: true}
	p1 := model.ProbesCOM(ids["R4"], done1)
	// Same set, conceptually joined in different orders: the map is
	// identical so this checks the API contract rather than recomputing,
	// therefore also compare against full-cost sums over permutations
	// with equal prefixes.
	ordersA := plan.Order{ids["R2"], ids["R3"], ids["R5"], ids["R4"], ids["R6"]}
	ordersB := plan.Order{ids["R2"], ids["R5"], ids["R3"], ids["R4"], ids["R6"]}
	ordersC := plan.Order{ids["R5"], ids["R2"], ids["R3"], ids["R4"], ids["R6"]}
	costA := model.CostCOM(ordersA, false).HashProbes
	costB := model.CostCOM(ordersB, false).HashProbes
	costC := model.CostCOM(ordersC, false).HashProbes
	// These differ in general (different probe counts for R3/R5), but
	// the marginal probes into R4 and R6 must agree since the joined
	// sets agree.
	done2 := map[plan.NodeID]bool{plan.Root: true, ids["R2"]: true, ids["R3"]: true, ids["R5"]: true}
	p2 := model.ProbesCOM(ids["R4"], done2)
	if !almostEqual(p1, p2) {
		t.Errorf("prefix-set marginal differs: %v vs %v", p1, p2)
	}
	_ = costA
	_ = costB
	_ = costC
}

// TestSurvivalTreeRecursion checks m_T against hand-computed values.
func TestSurvivalTreeRecursion(t *testing.T) {
	tr, ids := runningExample()
	model := New(tr, DefaultWeights())
	m2 := tr.Stats(ids["R2"]).M
	fo2 := tr.Stats(ids["R2"]).Fo
	m3 := tr.Stats(ids["R3"]).M
	m4 := tr.Stats(ids["R4"]).M

	in := map[plan.NodeID]bool{plan.Root: true, ids["R2"]: true}
	if got := model.SurvivalTree(plan.Root, in); !almostEqual(got, m2) {
		t.Errorf("m_{1,2} = %v, want %v", got, m2)
	}
	in[ids["R3"]] = true
	want := m2 * (1 - math.Pow(1-m3, fo2))
	if got := model.SurvivalTree(plan.Root, in); !almostEqual(got, want) {
		t.Errorf("m_{1,2,3} = %v, want %v", got, want)
	}
	in[ids["R4"]] = true
	want = m2 * (1 - math.Pow(1-m3*m4, fo2))
	if got := model.SurvivalTree(plan.Root, in); !almostEqual(got, want) {
		t.Errorf("m_{1,2,3,4} = %v, want %v", got, want)
	}
}

// TestSurvivalMonotone: adding operators can only lower survival.
func TestSurvivalMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		tr := plan.RandomTree(2+rng.Intn(9), rng,
			plan.UniformStats(rng, 0.05, 0.95, 1, 10))
		model := New(tr, DefaultWeights())
		done := map[plan.NodeID]bool{plan.Root: true}
		prev := 1.0
		for len(done) < tr.Len() {
			f := tr.Frontier(done)
			next := f[rng.Intn(len(f))]
			done[next] = true
			cur := model.SurvivalTree(plan.Root, done)
			if cur > prev*(1+1e-9) {
				t.Fatalf("survival increased from %v to %v after adding %d", prev, cur, next)
			}
			prev = cur
		}
	}
}

// TestASICounterexample reproduces the proof of Theorem 3.1: a
// 7-relation query where two orders that swap two symmetric operators
// (which must have equal ranks for any rank function) have different
// costs under the COM model, so no rank function can exist.
func TestASICounterexample(t *testing.T) {
	// R1 joins R2 and R3; R2 joins R4, R5; R3 joins R6, R7.
	// m_i = 0.5 for all i; fo_i = 1 except fo2 and fo3.
	build := func(fo2, fo3 float64) (*plan.Tree, map[string]plan.NodeID) {
		tr := plan.NewTree("R1")
		ids := map[string]plan.NodeID{}
		ids["R2"] = tr.AddChild(plan.Root, plan.EdgeStats{M: 0.5, Fo: fo2}, "R2")
		ids["R3"] = tr.AddChild(plan.Root, plan.EdgeStats{M: 0.5, Fo: fo3}, "R3")
		ids["R4"] = tr.AddChild(ids["R2"], plan.EdgeStats{M: 0.5, Fo: 1}, "R4")
		ids["R5"] = tr.AddChild(ids["R2"], plan.EdgeStats{M: 0.5, Fo: 1}, "R5")
		ids["R6"] = tr.AddChild(ids["R3"], plan.EdgeStats{M: 0.5, Fo: 1}, "R6")
		ids["R7"] = tr.AddChild(ids["R3"], plan.EdgeStats{M: 0.5, Fo: 1}, "R7")
		return tr, ids
	}
	tr, ids := build(4, 9)
	model := New(tr, DefaultWeights())
	// Orders differing only in U=R5 vs V=R6 swap, as in the proof.
	oUV := plan.Order{ids["R2"], ids["R3"], ids["R4"], ids["R7"], ids["R5"], ids["R6"]}
	oVU := plan.Order{ids["R2"], ids["R3"], ids["R4"], ids["R7"], ids["R6"], ids["R5"]}
	cUV := model.CostCOM(oUV, false).HashProbes
	cVU := model.CostCOM(oVU, false).HashProbes
	if almostEqual(cUV, cVU) {
		t.Fatalf("expected different costs for fo2 != fo3, got %v == %v", cUV, cVU)
	}
	// Which is cheaper must flip when fo2 and fo3 swap, contradicting
	// any fixed rank ordering between R5 and R6.
	tr2, ids2 := build(9, 4)
	model2 := New(tr2, DefaultWeights())
	oUV2 := plan.Order{ids2["R2"], ids2["R3"], ids2["R4"], ids2["R7"], ids2["R5"], ids2["R6"]}
	oVU2 := plan.Order{ids2["R2"], ids2["R3"], ids2["R4"], ids2["R7"], ids2["R6"], ids2["R5"]}
	cUV2 := model2.CostCOM(oUV2, false).HashProbes
	cVU2 := model2.CostCOM(oVU2, false).HashProbes
	if (cUV < cVU) == (cUV2 < cVU2) {
		t.Errorf("preference did not flip when swapping fo2/fo3: (%v,%v) vs (%v,%v)",
			cUV, cVU, cUV2, cVU2)
	}
}

// TestOutputTuples: product of m*fo over all joins.
func TestOutputTuples(t *testing.T) {
	tr, _ := runningExample()
	model := New(tr, DefaultWeights())
	want := 0.5 * 3 * 0.4 * 2 * 0.6 * 2 * 0.7 * 2 * 0.8 * 3
	if got := model.OutputTuples(); !almostEqual(got, want) {
		t.Errorf("OutputTuples = %v, want %v", got, want)
	}
}

// TestRelCard: relative cardinalities multiply down the path.
func TestRelCard(t *testing.T) {
	tr, ids := runningExample()
	model := New(tr, DefaultWeights())
	if got := model.RelCard(plan.Root); !almostEqual(got, 1) {
		t.Errorf("RelCard(root) = %v", got)
	}
	if got, want := model.RelCard(ids["R2"]), 0.5*3.0; !almostEqual(got, want) {
		t.Errorf("RelCard(R2) = %v, want %v", got, want)
	}
	if got, want := model.RelCard(ids["R6"]), 0.7*2*0.8*3; !almostEqual(got, want) {
		t.Errorf("RelCard(R6) = %v, want %v", got, want)
	}
}

// TestMarginalSumsMatchFullCost: for every strategy, accumulating
// Marginal along an order (plus order-independent terms) equals the
// full Cost computation. This ties the DP to the cost functions.
func TestMarginalSumsMatchFullCost(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := DefaultWeights()
	for trial := 0; trial < 60; trial++ {
		tr := plan.RandomTree(2+rng.Intn(7), rng,
			plan.UniformStats(rng, 0.05, 0.95, 1, 10))
		model := New(tr, w)
		orders := tr.AllOrders()
		if len(orders) > 20 {
			orders = orders[:20]
		}
		for _, o := range orders {
			for _, s := range AllStrategies {
				sum := 0.0
				set := map[plan.NodeID]bool{plan.Root: true}
				for _, id := range o {
					sum += model.Marginal(s, id, set)
					set[id] = true
				}
				full := model.Cost(s, o, false)
				// SJ strategies carry an order-independent phase-1
				// term; BVP strategies charge the driver's initial
				// bitvector filters before the first join.
				switch s {
				case SJSTD, SJCOM:
					sum += w.Filter * model.Phase1Probes()
				case BVPSTD, BVPCOM:
					sum += w.Filter * model.InitialFilterProbes()
				}
				if !almostEqual(sum, full.Total) {
					t.Fatalf("strategy %v order %v: marginal sum %v != full %v (tree %v)",
						s, o, sum, full.Total, tr)
				}
			}
		}
	}
}

// TestBVPReducesToBaseWhenEpsilonZero: with a perfect bitvector
// (epsilon = 0), BVP probes relate directly to the base model: the
// hash probes of BVP+COM with all filters exact equal the survival-
// filtered counts, and in the star case hash probes shrink to m-scaled
// streams. We verify the weaker, exact property that BVP hash probes
// are never more than the base model's and filter probes are positive.
func TestBVPReducesToBaseWhenEpsilonZero(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	w := DefaultWeights()
	w.Epsilon = 0
	for trial := 0; trial < 60; trial++ {
		tr := plan.RandomTree(2+rng.Intn(7), rng,
			plan.UniformStats(rng, 0.05, 0.95, 1, 10))
		model := New(tr, w)
		for _, o := range tr.AllOrders()[:1] {
			stdC := model.CostSTD(o)
			bvpStd := model.CostBVPSTD(o)
			if bvpStd.HashProbes > stdC.HashProbes*(1+1e-9) {
				t.Fatalf("BVP+STD hash probes %v > STD %v", bvpStd.HashProbes, stdC.HashProbes)
			}
			comC := model.CostCOM(o, false)
			bvpCom := model.CostBVPCOM(o, false)
			if bvpCom.HashProbes > comC.HashProbes*(1+1e-9) {
				t.Fatalf("BVP+COM hash probes %v > COM %v", bvpCom.HashProbes, comC.HashProbes)
			}
			if bvpStd.FilterProbes <= 0 || bvpCom.FilterProbes <= 0 {
				t.Fatalf("BVP should count filter probes")
			}
		}
	}
}

// TestBVPSTDPaperFormula reproduces the Section 3.5 bitvector- and
// hashtable-probe expressions for the running example with order
// R2, R3, R5, R4, R6 symbolically.
func TestBVPSTDPaperFormula(t *testing.T) {
	tr, ids := runningExample()
	w := DefaultWeights()
	w.Epsilon = 0.03
	eps := w.Epsilon
	model := New(tr, w)
	m2, fo2 := tr.Stats(ids["R2"]).M, tr.Stats(ids["R2"]).Fo
	m3, fo3 := tr.Stats(ids["R3"]).M, tr.Stats(ids["R3"]).Fo
	m4, fo4 := tr.Stats(ids["R4"]).M, tr.Stats(ids["R4"]).Fo
	m5, fo5 := tr.Stats(ids["R5"]).M, tr.Stats(ids["R5"]).Fo
	m6 := tr.Stats(ids["R6"]).M
	_ = m6

	o := plan.Order{ids["R2"], ids["R3"], ids["R5"], ids["R4"], ids["R6"]}
	got := model.CostBVPSTD(o)

	wantFilter := 1 + (m2 + eps) + // BV(R2), BV(R5) on the driver
		m2*(m5+eps)*fo2 + // BV(R3) on R2's output
		m2*(m5+eps)*fo2*(m3+eps) + // BV(R4)
		m2*m5*fo2*m3*(m4+eps)*fo3*fo5 // BV(R6) on R5's output
	if !almostEqual(got.FilterProbes, wantFilter) {
		t.Errorf("BVP+STD filter probes = %v, want %v", got.FilterProbes, wantFilter)
	}

	wantHash := (m2+eps)*(m5+eps) + // probe R2
		m2*(m5+eps)*fo2*(m3+eps)*(m4+eps) + // probe R3
		m2*(m5+eps)*fo2*m3*(m4+eps)*fo3 + // probe R5
		m2*m5*fo2*m3*(m4+eps)*fo3*fo5*(m6+eps) + // probe R4
		m2*fo2*m3*fo3*m4*fo4*m5*fo5*(m6+eps) // probe R6
	if !almostEqual(got.HashProbes, wantHash) {
		t.Errorf("BVP+STD hash probes = %v, want %v", got.HashProbes, wantHash)
	}
}

// TestBVPCOMPaperR5Example reproduces the Section 3.5 formula for the
// probes into R5 under BVP+COM: N*m2*(m5+eps)*(1-(1-m3*(m4+eps))^fo2).
func TestBVPCOMPaperR5Example(t *testing.T) {
	tr, ids := runningExample()
	w := DefaultWeights()
	w.Epsilon = 0.03
	eps := w.Epsilon
	model := New(tr, w)
	m2, fo2 := tr.Stats(ids["R2"]).M, tr.Stats(ids["R2"]).Fo
	m3 := tr.Stats(ids["R3"]).M
	m4 := tr.Stats(ids["R4"]).M
	m5 := tr.Stats(ids["R5"]).M

	set := map[plan.NodeID]bool{plan.Root: true, ids["R2"]: true, ids["R3"]: true}
	st := model.bvpStateFor(set)
	got := model.levelCountBVP(plan.Root, st)
	want := m2 * (m5 + eps) * (1 - math.Pow(1-m3*(m4+eps), fo2))
	if !almostEqual(got, want) {
		t.Errorf("BVP+COM probes into R5 = %v, want %v", got, want)
	}
}

// TestAdjustedStatsIdentity: s' = m'*fo' = ratio * m * fo (Thm 3.4).
func TestAdjustedStatsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 500; trial++ {
		st := plan.EdgeStats{M: 0.05 + rng.Float64()*0.9, Fo: 1 + rng.Float64()*20}
		ratio := rng.Float64()
		if ratio == 0 {
			continue
		}
		adj := AdjustedStats(st, ratio)
		if !almostEqual(adj.M*adj.Fo, ratio*st.M*st.Fo) {
			t.Fatalf("s' = %v, want ratio*s = %v", adj.M*adj.Fo, ratio*st.M*st.Fo)
		}
		if adj.M > st.M*(1+1e-9) {
			t.Fatalf("m' %v > m %v", adj.M, st.M)
		}
		if adj.Fo > st.Fo*(1+1e-9) {
			t.Fatalf("fo' %v > fo %v", adj.Fo, st.Fo)
		}
	}
}

// TestAdjustedMatchFanoutMonteCarlo validates Theorem 3.4 against
// simulation: tuples with fo integer matches, each match surviving
// independently with probability ratio.
func TestAdjustedMatchFanoutMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const trials = 400000
	for _, tc := range []struct {
		m, fo, ratio float64
	}{
		{0.6, 4, 0.5},
		{0.9, 2, 0.25},
		{0.3, 7, 0.8},
	} {
		matched := 0
		totalMatches := 0
		for i := 0; i < trials; i++ {
			if rng.Float64() >= tc.m {
				continue // no match at all
			}
			// fo matches, each survives with prob ratio.
			k := 0
			for j := 0; j < int(tc.fo); j++ {
				if rng.Float64() < tc.ratio {
					k++
				}
			}
			if k > 0 {
				matched++
				totalMatches += k
			}
		}
		gotM := float64(matched) / trials
		gotFo := float64(totalMatches) / float64(matched)
		adj := AdjustedStats(plan.EdgeStats{M: tc.m, Fo: tc.fo}, tc.ratio)
		if math.Abs(gotM-adj.M) > 0.01 {
			t.Errorf("m=%v fo=%v ratio=%v: m' sim %v vs formula %v", tc.m, tc.fo, tc.ratio, gotM, adj.M)
		}
		if math.Abs(gotFo-adj.Fo)/adj.Fo > 0.02 {
			t.Errorf("m=%v fo=%v ratio=%v: fo' sim %v vs formula %v", tc.m, tc.fo, tc.ratio, gotFo, adj.Fo)
		}
	}
}

// TestSJCOMOrderIndependence verifies Theorem 3.5: with full reduction
// and factorized execution, the phase-2 cost is identical for every
// valid join order.
func TestSJCOMOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		tr := plan.RandomTree(2+rng.Intn(7), rng,
			plan.UniformStats(rng, 0.05, 0.95, 1, 10))
		model := New(tr, DefaultWeights())
		orders := tr.AllOrders()
		base := model.CostSJCOM(orders[0], false).Total
		for _, o := range orders[1:] {
			if got := model.CostSJCOM(o, false).Total; !almostEqual(got, base) {
				t.Fatalf("SJ+COM cost differs across orders: %v vs %v on %v", got, base, tr)
			}
		}
	}
}

// TestSJPhase1RunningExample reproduces the Section 3.6 phase-1 probe
// count for the running example:
// |R2| + m3|R2| + |R5| + |R1| + (1-(1-m3 m4)^fo2) m2 |R1|.
func TestSJPhase1RunningExample(t *testing.T) {
	tr, ids := runningExample()
	model := New(tr, DefaultWeights())
	m2, fo2 := tr.Stats(ids["R2"]).M, tr.Stats(ids["R2"]).Fo
	m3 := tr.Stats(ids["R3"]).M
	m4 := tr.Stats(ids["R4"]).M
	m5, fo5 := tr.Stats(ids["R5"]).M, tr.Stats(ids["R5"]).Fo
	_ = fo5

	r2 := model.RelCard(ids["R2"])
	r5 := model.RelCard(ids["R5"])

	// R2 semi-joins children in increasing m' order; here m3=0.4 < m4=0.6
	// so R3 first: |R2| + m3|R2|. R5 semi-joins R6: |R5|. Root semi-joins
	// R2 then R5 (m'_{1->2} vs m'_{1->5}): the order is by adjusted m'.
	m12 := m2 * (1 - math.Pow(1-m3*m4, fo2))
	m15 := m5 // R6 leaf: ratio(R5 child R6)=... R5's child R6 is a leaf so m'_{5->6}=m6
	m6 := tr.Stats(ids["R6"]).M
	_ = m15
	// ratio(R5) = m'_{5->6} = m6; m'_{1->5} = m5*(1-(1-m6)^fo5).
	m15 = m5 * (1 - math.Pow(1-m6, tr.Stats(ids["R5"]).Fo))

	want := r2 + m3*r2 + r5 + 1.0
	if m12 < m15 {
		want += m12 // second root semi-join probes survivors of first
	} else {
		want += m15
	}
	if got := model.Phase1Probes(); !almostEqual(got, want) {
		t.Errorf("Phase1Probes = %v, want %v", got, want)
	}
}

// TestSJOutputPreserved: the reduction must not change the expected
// output size: reduced driver * product of adjusted fanouts equals the
// product of m*fo over all edges.
func TestSJOutputPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		tr := plan.RandomTree(2+rng.Intn(9), rng,
			plan.UniformStats(rng, 0.05, 0.95, 1, 10))
		model := New(tr, DefaultWeights())
		out := model.ReductionRatio(plan.Root)
		for _, id := range tr.NonRoot() {
			out *= AdjustedStats(tr.Stats(id), model.ReductionRatio(id)).Fo
		}
		if want := model.OutputTuples(); !almostEqual(out, want) {
			t.Fatalf("SJ output %v != direct output %v on %v", out, want, tr)
		}
	}
}

// TestStrategyString covers the Stringer.
func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		STD: "STD", COM: "COM", BVPSTD: "BVP+STD",
		BVPCOM: "BVP+COM", SJSTD: "SJ+STD", SJCOM: "SJ+COM",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
	if Strategy(99).String() != "unknown" {
		t.Errorf("out-of-range strategy should be unknown")
	}
}

// TestCostDispatch ensures Cost routes to each specialized function.
func TestCostDispatch(t *testing.T) {
	tr, ids := runningExample()
	model := New(tr, DefaultWeights())
	o := plan.Order{ids["R2"], ids["R3"], ids["R5"], ids["R4"], ids["R6"]}
	for _, s := range AllStrategies {
		pc := model.Cost(s, o, true)
		if pc.Strategy != s {
			t.Errorf("Cost(%v) tagged %v", s, pc.Strategy)
		}
		if pc.Total <= 0 {
			t.Errorf("Cost(%v) = %v, want positive", s, pc.Total)
		}
	}
}

// TestFlatOutputAddsExpansion: flat output must strictly increase COM
// variants' totals by Expand * OutputTuples.
func TestFlatOutputAddsExpansion(t *testing.T) {
	tr, ids := runningExample()
	w := DefaultWeights()
	model := New(tr, w)
	o := plan.Order{ids["R2"], ids["R3"], ids["R5"], ids["R4"], ids["R6"]}
	for _, s := range []Strategy{COM, BVPCOM, SJCOM} {
		flat := model.Cost(s, o, true)
		fact := model.Cost(s, o, false)
		wantDelta := w.Expand * model.OutputTuples()
		if !almostEqual(flat.Total-fact.Total, wantDelta) {
			t.Errorf("%v: expansion delta = %v, want %v", s, flat.Total-fact.Total, wantDelta)
		}
	}
}
