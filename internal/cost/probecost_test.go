package cost

import (
	"math/rand"
	"testing"

	"m2mjoin/internal/plan"
)

// TestProbeCostDefaults: the unit-cost model behaves exactly as before.
func TestProbeCostDefaults(t *testing.T) {
	tr, _ := runningExample()
	m := New(tr, DefaultWeights())
	for _, id := range tr.NonRoot() {
		if m.ProbeCost(id) != 1 {
			t.Errorf("default probe cost for %d = %v", id, m.ProbeCost(id))
		}
	}
	m2 := NewWithProbeCosts(tr, DefaultWeights(), nil)
	o := plan.Order{1, 2, 4, 3, 5}
	if a, b := m.CostCOM(o, true).Total, m2.CostCOM(o, true).Total; a != b {
		t.Errorf("nil cost map changed totals: %v vs %v", a, b)
	}
}

// TestProbeCostScalesLinearly: doubling one operator's probe cost adds
// exactly its probe count to the total, for every strategy.
func TestProbeCostScalesLinearly(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		tr := plan.RandomTree(3+rng.Intn(5), rng,
			plan.UniformStats(rng, 0.1, 0.9, 1, 6))
		target := plan.NodeID(1 + rng.Intn(tr.Len()-1))
		unit := New(tr, DefaultWeights())
		scaled := NewWithProbeCosts(tr, DefaultWeights(),
			map[plan.NodeID]float64{target: 2})
		for _, o := range tr.AllOrders()[:1] {
			for _, s := range AllStrategies {
				base := unit.Cost(s, o, false)
				got := scaled.Cost(s, o, false)
				// The delta equals the (unit-cost) probes into target:
				// recompute with cost 1 everywhere else zeroed out via a
				// 3x model and linearity check instead.
				tripled := NewWithProbeCosts(tr, DefaultWeights(),
					map[plan.NodeID]float64{target: 3}).Cost(s, o, false)
				deltaA := got.Total - base.Total
				deltaB := tripled.Total - got.Total
				if !almostEqual(deltaA, deltaB) {
					t.Fatalf("strategy %v: non-linear probe cost scaling (%v vs %v)",
						s, deltaA, deltaB)
				}
				if deltaA < 0 {
					t.Fatalf("strategy %v: negative probe-cost delta", s)
				}
			}
		}
	}
}

// TestProbeCostMarginalsConsistent: the marginal-sum identity holds
// with heterogeneous probe costs too.
func TestProbeCostMarginalsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	w := DefaultWeights()
	for trial := 0; trial < 30; trial++ {
		tr := plan.RandomTree(2+rng.Intn(6), rng,
			plan.UniformStats(rng, 0.1, 0.9, 1, 6))
		costs := make(map[plan.NodeID]float64)
		for _, id := range tr.NonRoot() {
			costs[id] = 0.5 + rng.Float64()*20
		}
		model := NewWithProbeCosts(tr, w, costs)
		for _, o := range tr.AllOrders()[:1] {
			for _, s := range AllStrategies {
				sum := 0.0
				set := map[plan.NodeID]bool{plan.Root: true}
				for _, id := range o {
					sum += model.Marginal(s, id, set)
					set[id] = true
				}
				switch s {
				case SJSTD, SJCOM:
					sum += w.Filter * model.Phase1Probes()
				case BVPSTD, BVPCOM:
					sum += w.Filter * model.InitialFilterProbes()
				}
				full := model.Cost(s, o, false)
				if !almostEqual(sum, full.Total) {
					t.Fatalf("strategy %v: marginal sum %v != full %v with probe costs",
						s, sum, full.Total)
				}
			}
		}
	}
}

// TestExpensiveProbeChangesOptimum: with an expensive operator, the
// optimal COM plan defers or avoids probing it; the per-operator cost
// must actually influence the DP's choice.
func TestExpensiveProbeChangesOptimum(t *testing.T) {
	tr := plan.NewTree("R1")
	// Two leaves with identical statistics; only the probe cost
	// differs, so only the cost can break the tie.
	cheap := tr.AddChild(plan.Root, plan.EdgeStats{M: 0.5, Fo: 2}, "cheap")
	pricey := tr.AddChild(plan.Root, plan.EdgeStats{M: 0.5, Fo: 2}, "pricey")
	model := NewWithProbeCosts(tr, DefaultWeights(),
		map[plan.NodeID]float64{pricey: 100})

	// Probing cheap first filters the driver before the expensive call:
	// cost(cheap, pricey) = 1 + 0.5*100 vs cost(pricey, cheap) = 100 + 0.5.
	a := model.CostCOM(plan.Order{cheap, pricey}, false).Total
	b := model.CostCOM(plan.Order{pricey, cheap}, false).Total
	if a >= b {
		t.Fatalf("cheap-first (%v) should beat pricey-first (%v)", a, b)
	}
	if !almostEqual(a, 1+0.5*100) {
		t.Errorf("cheap-first cost = %v, want 51", a)
	}
	// Under COM, pricey's fanout does not multiply the probes into
	// cheap (a driver-attribute probe counts survivors only): the
	// second term is survival m=0.5, not s=1.
	if !almostEqual(b, 100+0.5) {
		t.Errorf("pricey-first cost = %v, want 100.5", b)
	}
}

// TestNewWithProbeCostsPanics: non-positive costs are programming
// errors.
func TestNewWithProbeCostsPanics(t *testing.T) {
	tr, _ := runningExample()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	NewWithProbeCosts(tr, DefaultWeights(), map[plan.NodeID]float64{1: 0})
}
