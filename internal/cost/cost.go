// Package cost implements the cost model of Kalumin & Deshpande
// (ICDE 2025, Section 3): estimating the number of probes performed by
// a left-deep pipelined plan over an acyclic join tree, properly
// accounting for the avoidance of redundant probes when a factorized
// intermediate representation is used (COM), and extending the model to
// bitvector-based early pruning (BVP, Section 3.5) and semi-join full
// reduction (SJ, Section 3.6).
//
// All costs are expressed per driver tuple; multiply by the driver
// cardinality N for totals. Probe kinds are weighted: a hash-table
// probe costs 1, a bitvector or semi-join probe costs Weights.Filter
// (paper: 1/2), and expanding one output tuple costs Weights.Expand
// (paper: 1/14).
package cost

import (
	"math"
	"strings"

	"m2mjoin/internal/plan"
)

// Strategy identifies one of the six execution approaches compared in
// the paper (Section 4.1).
type Strategy int

const (
	// STD fully materializes flat intermediate tuples after each join.
	STD Strategy = iota
	// COM keeps intermediates factorized, avoiding redundant probes.
	COM
	// BVPSTD is STD plus bitvector-based early pruning.
	BVPSTD
	// BVPCOM is COM plus bitvector-based early pruning.
	BVPCOM
	// SJSTD is STD preceded by a semi-join full-reduction pass.
	SJSTD
	// SJCOM is COM preceded by a semi-join full-reduction pass.
	SJCOM
)

var strategyNames = [...]string{
	STD:    "STD",
	COM:    "COM",
	BVPSTD: "BVP+STD",
	BVPCOM: "BVP+COM",
	SJSTD:  "SJ+STD",
	SJCOM:  "SJ+COM",
}

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	if s < 0 || int(s) >= len(strategyNames) {
		return "unknown"
	}
	return strategyNames[s]
}

// AllStrategies lists the six strategies in presentation order.
var AllStrategies = []Strategy{STD, COM, BVPSTD, BVPCOM, SJSTD, SJCOM}

// ParseStrategy resolves a strategy name as produced by String,
// case-insensitively and accepting '-' or '_' for '+' (so "bvp-std"
// and "SJ_COM" work on a command line or in a JSON request).
func ParseStrategy(name string) (Strategy, bool) {
	canon := func(s string) string {
		b := []byte(strings.ToUpper(s))
		for i, c := range b {
			if c == '-' || c == '_' {
				b[i] = '+'
			}
		}
		return string(b)
	}
	want := canon(name)
	for s, n := range strategyNames {
		if canon(n) == want {
			return Strategy(s), true
		}
	}
	return 0, false
}

// Weights holds the relative costs of the cheaper probe kinds, as
// micro-benchmarked in Section 5.4 of the paper, plus the bitvector
// false-positive probability.
type Weights struct {
	// Filter is the cost of one bitvector or semi-join probe relative
	// to a hash-table probe. The paper measures 1/2.
	Filter float64
	// Expand is the cost of generating one flat output tuple relative
	// to a hash-table probe. The paper measures 1/14.
	Expand float64
	// Epsilon is the bitvector false-positive probability used by the
	// BVP cost formulas (Section 3.5).
	Epsilon float64
}

// DefaultWeights are the weight parameters used throughout the paper's
// evaluation.
func DefaultWeights() Weights {
	return Weights{Filter: 0.5, Expand: 1.0 / 14.0, Epsilon: 0.01}
}

// Model estimates plan costs over a join tree. Construct with New.
type Model struct {
	tree    *plan.Tree
	weights Weights
	// probeCosts holds the per-operator probe cost c_i (Section 2.1's
	// generalized join operator: a hash lookup, an index probe, or an
	// external API/UDF call). Nil means unit costs everywhere.
	probeCosts map[plan.NodeID]float64
}

// New returns a cost model for the given tree and weights, with unit
// probe costs (every probe costs 1, the hash-join default).
func New(t *plan.Tree, w Weights) *Model {
	return &Model{tree: t, weights: w}
}

// NewWithProbeCosts returns a cost model with heterogeneous per-
// operator probe costs: probing relation id costs costs[id] units
// (relations absent from the map cost 1). This models the paper's
// expensive-probe scenarios — index lookups, web-service calls, or
// expensive UDFs — where minimizing weighted probes is the key metric.
func NewWithProbeCosts(t *plan.Tree, w Weights, costs map[plan.NodeID]float64) *Model {
	m := &Model{tree: t, weights: w}
	if len(costs) > 0 {
		m.probeCosts = make(map[plan.NodeID]float64, len(costs))
		for id, c := range costs {
			if c <= 0 {
				panic("cost: probe costs must be positive")
			}
			m.probeCosts[id] = c
		}
	}
	return m
}

// ProbeCost returns c_id, the cost of one probe into relation id.
func (m *Model) ProbeCost(id plan.NodeID) float64 {
	if m.probeCosts == nil {
		return 1
	}
	if c, ok := m.probeCosts[id]; ok {
		return c
	}
	return 1
}

// Tree returns the join tree the model was built for.
func (m *Model) Tree() *plan.Tree { return m.tree }

// Weights returns the probe weights in use.
func (m *Model) Weights() Weights { return m.weights }

// SurvivalTree computes m_T, the probability that a tuple of the
// subtree root survives all join operators in the connected set `in`
// (Section 3.3). The set must contain root; descendants of root not in
// `in` are ignored. The recursion is
//
//	m_T = m_Tr * (1 - (1 - prod_i m_Ti)^fo_Tr)
//
// where T1..Tk are the included children subtrees of the root Tr, and
// m_root = fo_root = 1 for the driver.
func (m *Model) SurvivalTree(root plan.NodeID, in map[plan.NodeID]bool) float64 {
	if !in[root] {
		panic("cost: SurvivalTree: set does not contain its root")
	}
	return m.survival(root, in)
}

func (m *Model) survival(id plan.NodeID, in map[plan.NodeID]bool) float64 {
	childProd := 1.0
	any := false
	for _, c := range m.tree.Children(id) {
		if in[c] {
			childProd *= m.survival(c, in)
			any = true
		}
	}
	var mSelf, fo float64
	if id == plan.Root {
		mSelf, fo = 1, 1
	} else {
		st := m.tree.Stats(id)
		mSelf, fo = st.M, st.Fo
	}
	if !any {
		return mSelf
	}
	return mSelf * (1 - math.Pow(1-childProd, fo))
}

// ProbesCOM returns the expected number of probes (per driver tuple)
// into `next` when the connected prefix `done` (which must include the
// driver and next's parent, but not next) has already been joined and
// redundant probes are avoided through a factorized representation.
// This is Equation (1) of the paper:
//
//	probes = prod_{ancestors a of next} m_a * fo_a
//	       * prod_{joined subtrees T hanging off those ancestors} m_T
//
// Expansion happens only along the root-to-next path; side branches
// contribute only their survival probability.
func (m *Model) ProbesCOM(next plan.NodeID, done map[plan.NodeID]bool) float64 {
	pathUp := m.tree.PathToRoot(next) // parent .. root
	onPath := make(map[plan.NodeID]bool, len(pathUp)+1)
	for _, a := range pathUp {
		onPath[a] = true
	}
	probes := 1.0
	for _, a := range pathUp {
		if a != plan.Root {
			st := m.tree.Stats(a)
			probes *= st.M * st.Fo
		}
		for _, c := range m.tree.Children(a) {
			if c == next || onPath[c] || !done[c] {
				continue
			}
			probes *= m.survival(c, done)
		}
	}
	return probes
}

// PlanCost is the cost breakdown of one left-deep plan, expressed per
// driver tuple (multiply by the driver cardinality for totals).
type PlanCost struct {
	Strategy Strategy
	// HashProbes is the expected hash-probe cost: the probe count with
	// each probe weighted by its operator's ProbeCost. Under the
	// default unit costs this equals the expected number of probes.
	HashProbes float64
	// FilterProbes is the expected number of bitvector or semi-join
	// probes (weighted by Weights.Filter in Total).
	FilterProbes float64
	// ExpandedTuples is the expected number of flat output tuples
	// produced by the final expansion (weighted by Weights.Expand).
	// Zero when the output stays factorized or when the strategy is a
	// STD variant (STD materializes as it goes; that work is already
	// reflected in its larger probe counts).
	ExpandedTuples float64
	// Total is the weighted scalar cost.
	Total float64
}

func (m *Model) finish(pc PlanCost) PlanCost {
	pc.Total = pc.HashProbes + m.weights.Filter*pc.FilterProbes + m.weights.Expand*pc.ExpandedTuples
	return pc
}

// OutputTuples returns the expected number of flat result tuples per
// driver tuple: the product of m*fo over all joins.
func (m *Model) OutputTuples() float64 {
	out := 1.0
	for _, id := range m.tree.NonRoot() {
		st := m.tree.Stats(id)
		out *= st.M * st.Fo
	}
	return out
}

// RelCard returns the cardinality of relation id relative to the
// driver cardinality: prod over the path root->id of m*fo. Under the
// uniformity assumptions of Section 3 this is |R_id| / N, and it is
// exactly how the synthetic workload generator sizes relations.
func (m *Model) RelCard(id plan.NodeID) float64 {
	card := 1.0
	for id != plan.Root {
		st := m.tree.Stats(id)
		card *= st.M * st.Fo
		id = m.tree.Parent(id)
	}
	return card
}

// CostSTD returns the cost of order o under standard execution
// (the classical model of Section 2.1): every materialized intermediate
// tuple probes every subsequent operator.
func (m *Model) CostSTD(o plan.Order) PlanCost {
	pc := PlanCost{Strategy: STD}
	stream := 1.0
	for _, id := range o {
		pc.HashProbes += stream * m.ProbeCost(id)
		st := m.tree.Stats(id)
		stream *= st.M * st.Fo
	}
	return m.finish(pc)
}

// CostCOM returns the cost of order o when redundant probes are
// avoided through the factorized representation (Section 3.3).
// flatOutput adds the final expansion cost.
func (m *Model) CostCOM(o plan.Order, flatOutput bool) PlanCost {
	pc := PlanCost{Strategy: COM}
	done := map[plan.NodeID]bool{plan.Root: true}
	for _, next := range o {
		pc.HashProbes += m.ProbesCOM(next, done) * m.ProbeCost(next)
		done[next] = true
	}
	if flatOutput {
		pc.ExpandedTuples = m.OutputTuples()
	}
	return m.finish(pc)
}

// Cost dispatches to the strategy-specific costing of order o.
// flatOutput only affects the COM-based strategies, which require an
// explicit expansion step to produce flat tuples.
func (m *Model) Cost(s Strategy, o plan.Order, flatOutput bool) PlanCost {
	switch s {
	case STD:
		return m.CostSTD(o)
	case COM:
		return m.CostCOM(o, flatOutput)
	case BVPSTD:
		return m.CostBVPSTD(o)
	case BVPCOM:
		return m.CostBVPCOM(o, flatOutput)
	case SJSTD:
		return m.CostSJSTD(o)
	case SJCOM:
		return m.CostSJCOM(o, flatOutput)
	default:
		panic("cost: unknown strategy")
	}
}
