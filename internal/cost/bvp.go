package cost

import (
	"math"

	"m2mjoin/internal/plan"
)

// This file implements the cost model for bitvector-based early pruning
// (BVP, Section 3.5). Every join operator builds a bitvector over its
// build-side join key; the bitvector is pushed down to the lowest
// applicable point of the pipeline (Fig. 3):
//
//   - bitvectors for the driver's children filter driver tuples before
//     the first hash probe;
//   - the bitvector of any other relation c filters the rows of c's
//     parent immediately after the parent's own join materializes them.
//
// A bitvector passes a tuple with probability (m + epsilon): matching
// tuples always pass, non-matching ones pass on a false positive.
// Bitvectors belonging to the same materialization point are applied in
// ascending NodeID order (the paper applies them in plan order; the
// difference only redistributes filter probes within one event and is
// bounded by the event's stream size — we pick the deterministic order
// so that marginal costs depend on the joined set alone).

// bvpState tracks which relations have been joined and which have had
// their bitvector applied but whose hash join has not yet run.
type bvpState struct {
	done    map[plan.NodeID]bool
	pending map[plan.NodeID]bool
}

func newBVPState(n int) *bvpState {
	return &bvpState{
		done:    make(map[plan.NodeID]bool, n),
		pending: make(map[plan.NodeID]bool, n),
	}
}

// CostBVPSTD returns the cost of order o under standard (fully
// materializing) execution with bitvector early pruning. The stream of
// intermediate tuples is tracked as a scalar expectation; each event
// (bitvector application or hash join) charges probes against the
// current stream and rescales it.
func (m *Model) CostBVPSTD(o plan.Order) PlanCost {
	eps := m.weights.Epsilon
	pc := PlanCost{Strategy: BVPSTD}
	joined := map[plan.NodeID]bool{plan.Root: true}
	stream := 1.0

	applyBVs := func(at plan.NodeID) {
		for _, c := range m.childrenByID(at, joined) {
			pc.FilterProbes += stream
			stream *= m.tree.Stats(c).M + eps
		}
	}

	applyBVs(plan.Root)
	for _, c := range o {
		pc.HashProbes += stream * m.ProbeCost(c)
		st := m.tree.Stats(c)
		// The stream was already thinned by (m+eps) when BV(c) was
		// applied; the join keeps the true matches and fans them out.
		stream *= st.M / (st.M + eps) * st.Fo
		joined[c] = true
		applyBVs(c)
	}
	return m.finish(pc)
}

// survivalBVP generalizes the survival probability m_T to account for
// applied-but-unjoined bitvectors: a tuple of subtree root `id`
// survives if it matches its own join, passes the bitvector filters of
// its pending children, and has at least one surviving combination of
// matches through its joined children.
func (m *Model) survivalBVP(id plan.NodeID, st *bvpState) float64 {
	eps := m.weights.Epsilon
	childProd := 1.0
	any := false
	for _, c := range m.tree.Children(id) {
		switch {
		case st.done[c]:
			childProd *= m.survivalBVP(c, st)
			any = true
		case st.pending[c]:
			childProd *= m.tree.Stats(c).M + eps
			any = true
		}
	}
	var mSelf, fo float64
	if id == plan.Root {
		mSelf, fo = 1, 1
	} else {
		stats := m.tree.Stats(id)
		mSelf, fo = stats.M, stats.Fo
	}
	if !any {
		return mSelf
	}
	return mSelf * (1 - math.Pow(1-childProd, fo))
}

// levelCountBVP returns the expected number of live rows (per driver
// tuple) in the factorized vector of relation `at`, given the joins in
// st.done and the bitvector filters in st.pending. It generalizes
// Equation (1): expansion happens along the root->at path; everything
// hanging off the path contributes survival probabilities (for joined
// subtrees) or bitvector pass factors (for pending filters).
func (m *Model) levelCountBVP(at plan.NodeID, st *bvpState) float64 {
	eps := m.weights.Epsilon
	pathUp := append([]plan.NodeID{at}, m.tree.PathToRoot(at)...) // at, parent, .., root
	onPath := make(map[plan.NodeID]bool, len(pathUp))
	for _, a := range pathUp {
		onPath[a] = true
	}
	count := 1.0
	for _, a := range pathUp {
		if a != plan.Root {
			stats := m.tree.Stats(a)
			count *= stats.M * stats.Fo
		}
		for _, c := range m.tree.Children(a) {
			if onPath[c] {
				continue
			}
			switch {
			case st.done[c]:
				count *= m.survivalBVP(c, st)
			case st.pending[c]:
				count *= m.tree.Stats(c).M + eps
			}
		}
	}
	return count
}

// CostBVPCOM returns the cost of order o under factorized execution
// with bitvector early pruning (the BVP+COM combination of Section
// 3.5). Probes into a relation whose join attribute belongs to an
// ancestor count only surviving ancestor rows, with fanouts taken out
// of the equation exactly as in the paper's R5 example.
func (m *Model) CostBVPCOM(o plan.Order, flatOutput bool) PlanCost {
	pc := PlanCost{Strategy: BVPCOM}
	st := newBVPState(m.tree.Len())
	st.done[plan.Root] = true

	applyBVs := func(at plan.NodeID) {
		for _, c := range m.childrenByID(at, st.done) {
			// The filter sees the rows of `at` before BV(c) itself is
			// accounted, then thins them.
			pc.FilterProbes += m.levelCountBVP(at, st)
			st.pending[c] = true
		}
	}

	applyBVs(plan.Root)
	for _, c := range o {
		// Probing c's hash table: the probing rows live at c's parent's
		// level and have already been filtered by BV(c) (c is pending).
		pc.HashProbes += m.levelCountBVP(m.tree.Parent(c), st) * m.ProbeCost(c)
		delete(st.pending, c)
		st.done[c] = true
		applyBVs(c)
	}
	if flatOutput {
		pc.ExpandedTuples = m.OutputTuples()
	}
	return m.finish(pc)
}
