package cost

import (
	"math"
	"sort"

	"m2mjoin/internal/plan"
)

// This file implements the cost model for semi-join full reduction
// (SJ, Section 3.6). Phase 1 reduces relations bottom-up: each parent
// is semi-joined with its (already reduced) children, leaves' parents
// first, ending with the driver, which becomes fully reduced. Phase 2
// runs a normal left-deep plan from the reduced driver; by construction
// every phase-2 match probability is 1 and the fanouts are adjusted per
// Theorem 3.4.

// AdjustedStats applies Theorem 3.4: given parent->child statistics
// (m, fo) and an independent reduction of the child by `ratio`, the
// adjusted match probability and fanout when probing into the reduced
// child are
//
//	m'  = m * (1 - (1-ratio)^fo)
//	fo' = fo * ratio / (1 - (1-ratio)^fo)
//
// so that s' = m'*fo' = ratio * m * fo, matching the classical
// selectivity adjustment.
func AdjustedStats(st plan.EdgeStats, ratio float64) plan.EdgeStats {
	if ratio >= 1 {
		return st
	}
	if ratio <= 0 {
		return plan.EdgeStats{M: 0, Fo: 1}
	}
	surv := 1 - math.Pow(1-ratio, st.Fo)
	return plan.EdgeStats{
		M:  st.M * surv,
		Fo: st.Fo * ratio / surv,
	}
}

// ReductionRatio returns the fraction of relation id's tuples that
// survive phase 1, i.e. the semi-joins with all of id's own (already
// reduced) children. Leaves are never reduced (ratio 1).
func (m *Model) ReductionRatio(id plan.NodeID) float64 {
	ratio := 1.0
	for _, c := range m.tree.Children(id) {
		ratio *= m.adjustedM(c)
	}
	return ratio
}

// adjustedM returns m'_{parent->c}: the probability that a parent tuple
// has a match in child c after c has been reduced by its own children.
func (m *Model) adjustedM(c plan.NodeID) float64 {
	st := m.tree.Stats(c)
	return AdjustedStats(st, m.ReductionRatio(c)).M
}

// adjustedFo returns fo'_{parent->c} for phase 2: the expected number
// of matches in reduced child c for a parent tuple that has at least
// one (which, after reduction of the parent, is every parent tuple).
func (m *Model) adjustedFo(c plan.NodeID) float64 {
	st := m.tree.Stats(c)
	return AdjustedStats(st, m.ReductionRatio(c)).Fo
}

// SemiJoinOrder returns the children of parent in the phase-1 probe
// order the paper proves optimal: increasing adjusted match
// probability m' (Section 3.6, optimization decision 2).
func (m *Model) SemiJoinOrder(parent plan.NodeID) []plan.NodeID {
	children := append([]plan.NodeID(nil), m.tree.Children(parent)...)
	sort.Slice(children, func(i, j int) bool {
		mi, mj := m.adjustedM(children[i]), m.adjustedM(children[j])
		if mi != mj {
			return mi < mj
		}
		return children[i] < children[j]
	})
	return children
}

// Phase1Probes returns the expected number of semi-join probes of
// phase 1 per driver tuple, with each parent probing its children in
// the optimal (increasing m') order. The counts follow the paper's
// running-example derivation: the first semi-join of a parent probes
// all of the parent's tuples; each subsequent one probes only the
// survivors of the previous semi-joins.
func (m *Model) Phase1Probes() float64 {
	probes := 0.0
	for _, p := range m.tree.BottomUp() {
		children := m.SemiJoinOrder(p)
		if len(children) == 0 {
			continue
		}
		remaining := m.RelCard(p)
		for _, c := range children {
			probes += remaining * m.ProbeCost(c)
			remaining *= m.adjustedM(c)
		}
	}
	return probes
}

// CostSJSTD returns the cost of order o for the two-phase full
// reduction followed by standard execution. Phase-1 semi-join probes
// are filter probes; phase-2 hash probes use match probability 1 and
// the Theorem 3.4 adjusted fanouts, scaled by the reduced driver
// cardinality.
func (m *Model) CostSJSTD(o plan.Order) PlanCost {
	pc := PlanCost{Strategy: SJSTD}
	pc.FilterProbes = m.Phase1Probes()
	stream := m.ReductionRatio(plan.Root)
	for _, c := range o {
		pc.HashProbes += stream * m.ProbeCost(c)
		stream *= m.adjustedFo(c)
	}
	return m.finish(pc)
}

// CostSJCOM returns the cost of order o for full reduction followed by
// factorized execution. With all match probabilities equal to 1, the
// branch survival terms of Equation (1) vanish and the probes into a
// relation depend only on the product of adjusted fanouts along its
// root path — which is why the phase-2 cost is independent of the join
// order (Theorem 3.5).
func (m *Model) CostSJCOM(o plan.Order, flatOutput bool) PlanCost {
	pc := PlanCost{Strategy: SJCOM}
	pc.FilterProbes = m.Phase1Probes()
	reduced := m.ReductionRatio(plan.Root)
	for _, c := range o {
		probes := reduced
		for _, a := range m.tree.PathToRoot(c) {
			if a != plan.Root {
				probes *= m.adjustedFo(a)
			}
		}
		pc.HashProbes += probes * m.ProbeCost(c)
	}
	if flatOutput {
		pc.ExpandedTuples = m.OutputTuples()
	}
	return m.finish(pc)
}
